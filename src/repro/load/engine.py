"""Deterministic load construction: (scenario, seed) -> :class:`Load`.

Everything random here — class shapes, object-class assignment, client
draws, arrival times, plan trees — comes from sub-streams of
``SeededRNG(seed).derive("load")``.  That one derivation is the seed
hygiene the fault engine already established for its own stream: the
load schedule is independent of the ``"workload"``, ``"faults"``,
``"executor"``, and ``"scheduler"`` streams, so adding or removing a
fault plan cannot perturb arrivals and vice versa (proved by
``tests/test_load_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.load.scenario import LOAD_SCENARIOS, LoadScenario
from repro.util.rng import SeededRNG
from repro.workload.generator import PlanNode, Workload, pick_method
from repro.workload.synth import SyntheticClassFactory, SyntheticClassInfo


@dataclass
class Load:
    """One fully generated open-loop load, ready to run anywhere.

    Like a :class:`~repro.workload.generator.Workload`, a ``Load`` is
    cluster-independent: the same object can drive a static-partition
    cluster and a migration-enabled one with the identical traffic —
    the only variable is the directory policy under test.
    """

    scenario: LoadScenario
    seed: int
    workload: Workload          # classes, object world, plans, offsets
    clients: List[int]          # plan index -> client index

    @property
    def num_objects(self) -> int:
        return self.workload.num_objects


def build_load(scenario_or_name, seed: int, scale: float = 1.0,
               page_size: int = 4096) -> Load:
    """Generate the full load for a scenario at ``scale``."""
    if isinstance(scenario_or_name, str):
        try:
            scenario = LOAD_SCENARIOS[scenario_or_name]
        except KeyError:
            raise KeyError(
                f"unknown load scenario {scenario_or_name!r}; choose "
                f"from {sorted(LOAD_SCENARIOS)}"
            ) from None
    else:
        scenario = scenario_or_name
    scenario = scenario.scaled(scale)
    params = scenario.params()
    rng = SeededRNG(seed).derive("load")
    factory = SyntheticClassFactory(rng.derive("classes"), page_size)
    classes = [
        factory.make_class(
            name=f"Load{index}",
            pages=rng.randint(params.pages_min, params.pages_max),
            access_fraction=params.access_fraction,
            write_fraction=params.write_fraction,
        )
        for index in range(params.num_classes)
    ]
    assign_rng = rng.derive("assign")
    object_classes = [
        assign_rng.randint(0, params.num_classes - 1)
        for _ in range(params.num_objects)
    ]
    client_rng = rng.derive("clients")
    clients = [
        client_rng.randint(0, scenario.clients - 1)
        for _ in range(scenario.num_roots)
    ]
    offsets = scenario.arrivals.offsets(
        scenario.num_roots, rng.derive("arrivals")
    )
    plan_rng = rng.derive("plans")
    plans = [
        _build_plan(plan_rng, scenario, classes, object_classes, client)
        for client in clients
    ]
    base = Workload(
        params=params, classes=classes, object_classes=object_classes,
        plans=[], arrival_offsets=[],
    )
    # with_plans validates every tree against the object world
    # (indexes, method menus, §3.4 recursion preclusion).
    workload = base.with_plans(plans, offsets)
    return Load(scenario=scenario, seed=seed, workload=workload,
                clients=clients)


def _pick_object(rng: SeededRNG, scenario: LoadScenario, client: int,
                 path: set) -> Optional[int]:
    """One object draw for ``client``: own block with probability
    ``locality``, global Zipf otherwise; never an ancestor (§3.4)."""
    if rng.maybe(scenario.locality):
        start = client * scenario.block_size
        for _ in range(12):
            candidate = start + rng.zipf_index(scenario.block_size,
                                               scenario.skew)
            if candidate not in path:
                return candidate
    for _ in range(12):
        candidate = rng.zipf_index(scenario.num_objects, scenario.skew)
        if candidate not in path:
            return candidate
    remaining = [
        index for index in range(scenario.num_objects) if index not in path
    ]
    if not remaining:
        return None
    return rng.choice(remaining)


def _build_plan(rng: SeededRNG, scenario: LoadScenario,
                classes: Sequence[SyntheticClassInfo],
                object_classes: Sequence[int], client: int) -> PlanNode:
    root_obj = _pick_object(rng, scenario, client, path=set())
    return _build_node(rng, scenario, classes, object_classes, client,
                       obj_index=root_obj, depth=0, path={root_obj})


def _build_node(rng: SeededRNG, scenario: LoadScenario,
                classes: Sequence[SyntheticClassInfo],
                object_classes: Sequence[int], client: int,
                obj_index: int, depth: int, path: set) -> PlanNode:
    info = classes[object_classes[obj_index]]
    method_name = pick_method(rng, info, scenario.update_fraction)
    children: List[PlanNode] = []
    if depth < scenario.max_depth:
        # Same geometric branching decay as the closed-loop generator.
        expected = scenario.mean_branch / (depth + 1)
        count = 0
        while rng.random() < expected / (expected + 1) and count < 6:
            count += 1
        for _ in range(count):
            child_obj = _pick_object(rng, scenario, client, path)
            if child_obj is None:
                break
            path.add(child_obj)
            children.append(
                _build_node(rng, scenario, classes, object_classes, client,
                            obj_index=child_obj, depth=depth + 1, path=path)
            )
            path.discard(child_obj)
    return PlanNode(
        obj_index=obj_index,
        method_name=method_name,
        salt=rng.randint(0, (1 << 31) - 1),
        children=tuple(children),
    )
