"""Named open-loop load scenarios.

A scenario describes a *client population* and its traffic shape:
how many clients exist (one simulated node each), how many objects
they share, how skewed object popularity is, how strongly each client
prefers its own working set, and the arrival process driving it all.

Object popularity combines two pulls:

* **locality** — with probability ``locality`` a client picks from its
  own *block* of objects (a contiguous ``num_objects // clients``
  slice, Zipf-skewed within the block).  Block boundaries are
  deliberately decorrelated from the directory's round-robin homes
  (``object_id % num_nodes``), so under the static partition a
  client's own block lives almost entirely on *other* nodes' homes —
  the regime adaptive migration (:mod:`repro.gdo.migration`) exists
  to fix.
* **global Zipf** — the remaining picks use a cluster-wide Zipf over
  all objects, concentrating cross-client contention on a few globally
  hot objects that no single client dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Union

from repro.load.arrivals import BurstyArrivals, PoissonArrivals
from repro.util.errors import ConfigurationError
from repro.workload.params import WorkloadParams

ArrivalProcess = Union[PoissonArrivals, BurstyArrivals]


@dataclass(frozen=True)
class LoadScenario:
    """One open-loop traffic configuration.

    Attributes:
        name: scenario id (the CLI argument).
        clients: simulated client population; the driving cluster runs
            one node per client.
        num_objects: shared objects (must be >= clients so every
            client gets a non-empty block).
        num_classes: synthetic class count.
        pages_min / pages_max: object size range in pages.
        skew: Zipf exponent for both in-block and global picks.
        locality: probability a pick stays in the client's own block.
        arrivals: the open-loop arrival process.
        num_roots: root transactions at full scale.
        max_depth / mean_branch / update_fraction: plan-tree shape
            (same semantics as :class:`~repro.workload.params.WorkloadParams`).
    """

    name: str
    clients: int
    num_objects: int
    num_classes: int
    pages_min: int
    pages_max: int
    skew: float
    locality: float
    arrivals: ArrivalProcess
    num_roots: int
    max_depth: int = 2
    mean_branch: float = 1.2
    update_fraction: float = 0.95

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError("scenario needs at least one client")
        if self.num_objects < self.clients:
            raise ConfigurationError(
                f"{self.name}: {self.num_objects} objects for "
                f"{self.clients} clients leaves empty client blocks"
            )
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigurationError("locality must be in [0, 1]")
        if self.num_roots < 1:
            raise ConfigurationError("num_roots must be positive")

    @property
    def block_size(self) -> int:
        """Objects per client block; trailing remainder objects belong
        to no block (they are only reachable via the global Zipf)."""
        return self.num_objects // self.clients

    def block_range(self, client: int):
        start = client * self.block_size
        return range(start, start + self.block_size)

    def scaled(self, factor: float) -> "LoadScenario":
        """Cheaper/costlier copy: scales the root count only — the
        population, skew, and arrival process stay fixed so the
        traffic *shape* is scale-invariant."""
        return replace(
            self, num_roots=max(1, int(self.num_roots * factor))
        )

    def params(self) -> WorkloadParams:
        """The class/object-world parameters of this scenario (the
        plan trees themselves come from :mod:`repro.load.engine`, not
        the closed-loop generator)."""
        return WorkloadParams(
            num_objects=self.num_objects,
            num_classes=self.num_classes,
            pages_min=self.pages_min,
            pages_max=self.pages_max,
            num_roots=self.num_roots,
            max_depth=self.max_depth,
            mean_branch=self.mean_branch,
            update_fraction=self.update_fraction,
            skew=self.skew,
            mean_interarrival_s=0.0,  # arrivals come from the process
        )


LOAD_SCENARIOS: Dict[str, LoadScenario] = {
    # The acceptance scenario: 64 clients, Zipf(1.0), strong
    # per-client locality — the adaptive-migration claims baseline
    # (benchmarks/baselines/claims_locality.json) pins this one.
    "zipf-hot": LoadScenario(
        name="zipf-hot", clients=64, num_objects=256, num_classes=8,
        pages_min=1, pages_max=3, skew=1.0, locality=0.8,
        arrivals=PoissonArrivals(rate_tps=4000.0), num_roots=1280,
    ),
    # Same population under a two-state MMPP: long calm stretches
    # punctuated by 8x bursts.
    "zipf-burst": LoadScenario(
        name="zipf-burst", clients=64, num_objects=256, num_classes=8,
        pages_min=1, pages_max=3, skew=1.0, locality=0.8,
        arrivals=BurstyArrivals(
            calm_rate_tps=1000.0, burst_rate_tps=8000.0,
            mean_calm_s=0.02, mean_burst_s=0.005,
        ),
        num_roots=1280,
    ),
    # Small population for unit tests and the CI load-smoke job.
    "zipf-smoke": LoadScenario(
        name="zipf-smoke", clients=8, num_objects=64, num_classes=6,
        pages_min=1, pages_max=3, skew=1.0, locality=0.8,
        arrivals=PoissonArrivals(rate_tps=2000.0), num_roots=160,
    ),
}
