"""Driving a :class:`~repro.load.engine.Load` on a cluster.

The runner pins geography: client ``c`` submits from node
``nodes[c % num_nodes]``, and each client-block object is created
resident on its owning client's node.  Directory *homes* stay on the
round-robin partition (``object_id % num_nodes``) — deliberately
decorrelated from the blocks — so under the static policy nearly every
lock request is a remote directory message.  Adaptive migration
(:mod:`repro.gdo.migration`) is what closes that gap; this runner
produces the traffic that lets it.
"""

from __future__ import annotations

from repro.load.engine import Load
from repro.runtime.cluster import Cluster
from repro.util.errors import TransactionAborted
from repro.workload.runner import WorkloadRun


def run_load(cluster: Cluster, load: Load) -> WorkloadRun:
    """Instantiate the object world, submit every arrival, run to idle.

    Arrivals are open-loop: every root is submitted up front with its
    pre-generated offset as ``delay``, so starts never wait on
    completions.  Aborted roots (deadlock-retry exhaustion) count as
    failed, as in :func:`~repro.workload.runner.run_workload`.
    """
    scenario = load.scenario
    workload = load.workload
    num_nodes = len(cluster.nodes)
    block_size = scenario.block_size
    owned = block_size * scenario.clients
    handles = []
    for index in range(workload.num_objects):
        if index < owned:
            # Resident where its owning client runs; the directory home
            # stays round-robin, which is the whole point.
            node = cluster.nodes[(index // block_size) % num_nodes]
        else:
            node = None  # remainder objects: scheduler's pick
        handles.append(
            cluster.create(workload.class_of(index).schema, node=node)
        )
    handle_table = tuple(handles)
    tickets = []
    for index, plan in enumerate(workload.plans):
        client = load.clients[index]
        tickets.append(
            cluster.submit(
                handle_table[plan.obj_index], plan.method_name,
                plan, handle_table,
                node=cluster.nodes[client % num_nodes],
                label=f"load{index}",
                delay=workload.arrival_offsets[index],
            )
        )
    cluster.run()
    failed = 0
    for ticket in tickets:
        try:
            ticket.result()
        except TransactionAborted:
            failed += 1
    return WorkloadRun(cluster=cluster, handles=handles, tickets=tickets,
                       failed=failed)
