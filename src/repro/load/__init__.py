"""Open-loop traffic generation (ROADMAP item 1).

The paper's §5 workloads are *closed-loop*: a fixed set of root
transactions is generated up front and each client implicitly waits
for its previous transaction before measuring anything — a regime
that can never over-drive a hot object the way a large user population
does.  This package adds the missing open-loop side:

* :mod:`repro.load.arrivals` — arrival processes (Poisson and a
  bursty two-state MMPP) that emit transaction start times
  *independently of completion*.
* :mod:`repro.load.scenario` — named load scenarios: client
  population, Zipf popularity skew, per-client locality, arrival
  process, and intensity.
* :mod:`repro.load.engine` — deterministic scenario + seed ->
  :class:`Load` (plan trees, arrival offsets, client assignment), all
  randomness drawn from the dedicated ``rng.derive("load")`` stream so
  load schedules and fault schedules stay independent.
* :mod:`repro.load.runner` — submit a :class:`Load` on a cluster,
  pinning each root to its client's node.
* :mod:`repro.load.slo` — per-shard p50/p99/p999 request-latency and
  queue-depth SLO tables from the :mod:`repro.obs` metrics.

Its natural counterpart is directory-side adaptive home migration
(:mod:`repro.gdo.migration`): the skewed open-loop traffic produces
the hot entries migration exists to re-home.
"""

from repro.load.arrivals import BurstyArrivals, PoissonArrivals
from repro.load.engine import Load, build_load
from repro.load.runner import run_load
from repro.load.scenario import LOAD_SCENARIOS, LoadScenario
from repro.load.slo import shard_slo_series, snapshot_percentile

__all__ = [
    "BurstyArrivals",
    "PoissonArrivals",
    "Load",
    "build_load",
    "run_load",
    "LOAD_SCENARIOS",
    "LoadScenario",
    "shard_slo_series",
    "snapshot_percentile",
]
