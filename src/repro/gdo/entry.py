"""One GDO entry: the per-object lock structure plus the page map.

The entry is pure state plus decision logic — no messaging, no
simulation events.  The lock manager (``repro.txn.locks``) drives it
and charges the network; keeping the entry synchronous makes the O2PL
rules directly unit- and property-testable.

Transactions are represented by any object exposing ``id`` (a
:class:`~repro.util.ids.TxnId`), ``node`` (a NodeId), and
``is_ancestor_of(other) -> bool``; the concrete type lives in
``repro.txn.transaction``.

Acquisition implements rule 1 of §4.1 literally: "Transaction T may
acquire a lock if no other transaction holds a conflicting lock
(multiple readers/single writer policy) and all transactions that
retain the lock are ancestors of T."  Concurrent readers from
*different* families therefore share the lock (Algorithm 4.2's
"concurrent reading is OK" branch), with the paper's reader preference
— a late read request is granted ahead of a queued writer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.util.errors import ProtocolError
from repro.util.ids import NodeId, ObjectId, TxnId


class LockMode(enum.Enum):
    READ = "R"
    WRITE = "W"

    def conflicts_with(self, other) -> bool:
        """Multiple readers / single writer.

        ``other`` may be a :class:`~repro.txn.semantic.SemanticMode`,
        which owns the commutativity judgement — delegate so that a
        plain requester vs a semantic holder (and vice versa) gets one
        consistent answer."""
        if type(other) is LockMode:
            return self is LockMode.WRITE or other is LockMode.WRITE
        return other.conflicts_with(self)


def _base(mode) -> "LockMode":
    """Plain R/W lattice element under a (possibly semantic) mode."""
    return getattr(mode, "base", mode)


def _join(held, granted):
    """Mode recorded after a re-entrant grant or repeated retention.

    Equal modes keep themselves (a semantic tag survives retention);
    any mixed pair collapses to the plain base join."""
    if held is None or held == granted:
        return granted if held is None else held
    if _base(held) is LockMode.WRITE or _base(granted) is LockMode.WRITE:
        return LockMode.WRITE
    return LockMode.READ


class LockState(enum.Enum):
    """The paper's LockState flag: free, held for update, held for
    read, or retained (only retainers remain)."""

    FREE = "free"
    HELD_READ = "held-read"
    HELD_WRITE = "held-write"
    RETAINED = "retained"


class GrantDecision(enum.Enum):
    """Outcome of a lock request against the current entry state."""

    GRANTED = "granted"
    WAIT_LOCAL = "wait-local"        # conflict within the requester's family
    WAIT_GLOBAL = "wait-global"      # blocked by another family
    RECURSIVE = "recursive"          # conflicting ancestor holder (§3.4)


@dataclass
class PageMapEntry:
    """Which node stores the most up-to-date version of one page."""

    owner: NodeId
    version: int


@dataclass
class Waiter:
    """One queued lock request; ``wake`` is set by the lock manager to
    an object with ``succeed(payload)`` / ``fail(exc)`` (a sim event)."""

    txn: object
    mode: "LockMode"
    wake: object = None

    @property
    def txn_id(self) -> TxnId:
        return self.txn.id


@dataclass
class _FamilyQueue:
    """NonHoldersPtr element: waiting transactions of one family."""

    root: int
    site: NodeId
    waiters: List[Waiter] = field(default_factory=list)


class DirectoryEntry:
    """Lock structure + page map for one object (paper Figure 1)."""

    def __init__(self, object_id: ObjectId, home_node: NodeId,
                 page_count: int, creator_node: NodeId,
                 initial_version: int = 1):
        self.object_id = object_id
        self.home_node = home_node
        # Current holders: txn id -> mode.
        self.holders: Dict[TxnId, LockMode] = {}
        self._holder_txns: Dict[TxnId, object] = {}
        # Retainers: txn id -> strongest retained mode.
        self.retainers: Dict[TxnId, LockMode] = {}
        self._retainer_txns: Dict[TxnId, object] = {}
        # NonHoldersPtr: FIFO list of per-family waiter queues.
        self.waiting_families: List[_FamilyQueue] = []
        # Local list: waiters whose family already holds/retains the lock.
        self.local_waiters: List[Waiter] = []
        # Consistency page map.
        self.page_map: Dict[int, PageMapEntry] = {
            page: PageMapEntry(owner=creator_node, version=initial_version)
            for page in range(page_count)
        }

    # -- derived state -------------------------------------------------------

    @property
    def lock_state(self) -> LockState:
        if self.holders:
            if any(_base(mode) is LockMode.WRITE
                   for mode in self.holders.values()):
                return LockState.HELD_WRITE
            return LockState.HELD_READ
        if self.retainers:
            return LockState.RETAINED
        return LockState.FREE

    @property
    def read_count(self) -> int:
        """The paper's ReadCount field: number of concurrent readers."""
        return sum(
            1 for mode in self.holders.values()
            if _base(mode) is LockMode.READ
        )

    @property
    def is_free(self) -> bool:
        return not self.holders and not self.retainers

    def family_present(self, root_serial: int) -> bool:
        """Does this family hold or retain the lock?"""
        return any(t.root == root_serial for t in self.holders) or any(
            t.root == root_serial for t in self.retainers
        )

    def blocking_family_roots(self, exclude_root: Optional[int] = None) -> FrozenSet[int]:
        """Roots of every family holding or retaining the lock (for the
        deadlock detector's waits-for edges)."""
        roots = {t.root for t in self.holders} | {t.root for t in self.retainers}
        if exclude_root is not None:
            roots.discard(exclude_root)
        return frozenset(roots)

    def waits_for_edges(self) -> Dict[int, FrozenSet[int]]:
        """Waits-for edges keyed by actual conflict, per waiting family.

        For each queued family the head waiter's mode decides its
        blocking set: a holder/retainer family contributes an edge
        unless both its recorded mode and the waiter's are semantic and
        commute — two commuting holders must never appear as a spurious
        cycle to the deadlock detector.  Plain pairings always keep
        their edge (a plain waiter queued behind the entry is blocked
        by the entry's whole membership, exactly the pre-semantic
        behaviour)."""
        modes_by_root: Dict[int, List[LockMode]] = {}
        for txn_id, mode in self.holders.items():
            modes_by_root.setdefault(txn_id.root, []).append(mode)
        for txn_id, mode in self.retainers.items():
            modes_by_root.setdefault(txn_id.root, []).append(mode)
        edges: Dict[int, FrozenSet[int]] = {}
        for queue in self.waiting_families:
            if not queue.waiters:
                continue
            waiter_mode = queue.waiters[0].mode
            blocking = set()
            for root, modes in modes_by_root.items():
                if root == queue.root:
                    continue
                for held_mode in modes:
                    if (getattr(waiter_mode, "tag", None) is not None
                            and getattr(held_mode, "tag", None) is not None
                            and not waiter_mode.conflicts_with(held_mode)):
                        continue
                    blocking.add(root)
                    break
            edges[queue.root] = frozenset(blocking)
        return edges

    def holder_entries(self) -> Tuple[Tuple[TxnId, NodeId], ...]:
        """The ⟨TID,NID⟩ pairs of HolderPtr (for grant message sizing);
        includes retainers, which the holding site must also know."""
        pairs = [(txn_id, txn.node) for txn_id, txn in self._holder_txns.items()]
        pairs.extend(
            (txn_id, txn.node) for txn_id, txn in self._retainer_txns.items()
        )
        return tuple(pairs)

    def trace_info(self) -> Dict[str, object]:
        """Compact lock-structure snapshot for trace-event args."""
        return {
            "lock_state": self.lock_state.value,
            "holders": len(self.holders),
            "retainers": len(self.retainers),
            "waiting_families": len(self.waiting_families),
        }

    # -- acquisition decision (rules 1-2 of §4.1) ------------------------------

    def decide(self, txn, mode: LockMode,
               allow_recursive_reads: bool = False) -> GrantDecision:
        """Classify a request; does not mutate state."""
        if self.is_free:
            return GrantDecision.GRANTED
        # Re-entrant request: txn already holds the lock.  The entry
        # keeps the *join* of the held and requested modes; when the
        # join is the held mode itself the request is covered (plain:
        # W covers R; semantic: re-invoking the same method).  Anything
        # else is an upgrade, allowed only when no other holder
        # conflicts with the joined mode.
        held = self.holders.get(txn.id)
        if held is not None:
            joined = _join(held, mode)
            if joined == held:
                return GrantDecision.GRANTED
            if all(
                holder_id == txn.id
                or not joined.conflicts_with(holder_mode)
                for holder_id, holder_mode in self.holders.items()
            ):
                return GrantDecision.GRANTED
            return self._wait_kind(txn)
        # §3.4 preclusion: an ancestor *holds* (not merely retains) the
        # lock this transaction needs — the family would deadlock with
        # itself.  Shared reads are safe and may be permitted by flag.
        # Judged on base modes: families execute sequentially, so
        # intra-family semantic concurrency buys nothing and relaxing
        # here would only weaken the Moss invariants.
        for holder_id, holder_mode in self.holders.items():
            holder = self._holder_txns[holder_id]
            if not holder.is_ancestor_of(txn):
                continue
            if (_base(mode) is LockMode.WRITE
                    or _base(holder_mode) is LockMode.WRITE
                    or not allow_recursive_reads):
                return GrantDecision.RECURSIVE
        # Rule 1a: every retainer must be an ancestor of the requester.
        # A transaction may always re-acquire a lock it retains itself
        # (Moss: the retainer and its descendants have access) — this
        # arises when optimistic pre-acquisition retained the lock for
        # the very transaction now requesting it.
        # Semantic relaxation: a foreign family's *retained* semantic
        # lock blocks only non-commuting modes — the retained method's
        # effects merge commutatively with the requester's, so Moss
        # retention need not serialize them.
        for retainer_id, retained_mode in self.retainers.items():
            if retainer_id == txn.id:
                continue
            retainer = self._retainer_txns[retainer_id]
            if retainer_id.root != txn.id.root:
                if (getattr(mode, "tag", None) is not None
                        and getattr(retained_mode, "tag", None) is not None
                        and not mode.conflicts_with(retained_mode)):
                    continue
                return GrantDecision.WAIT_GLOBAL
            if not retainer.is_ancestor_of(txn):
                return GrantDecision.WAIT_LOCAL
        # Rule 1b: no other transaction holds a conflicting lock.
        for holder_id, holder_mode in self.holders.items():
            holder = self._holder_txns[holder_id]
            if holder.is_ancestor_of(txn):
                continue  # non-conflicting ancestor (allowed shared read)
            if mode.conflicts_with(holder_mode):
                if holder_id.root == txn.id.root:
                    return GrantDecision.WAIT_LOCAL
                return GrantDecision.WAIT_GLOBAL
        return GrantDecision.GRANTED

    def _wait_kind(self, txn) -> GrantDecision:
        """Upgrade blocked: local if only family members block, else global."""
        for holder_id in self.holders:
            if holder_id != txn.id and holder_id.root != txn.id.root:
                return GrantDecision.WAIT_GLOBAL
        return GrantDecision.WAIT_LOCAL

    def grant(self, txn, mode: LockMode) -> None:
        """Record a grant decided by :meth:`decide` (or by a release)."""
        existing = self.holders.get(txn.id)
        if existing is LockMode.WRITE and mode is LockMode.READ:
            return  # W already covers R
        self.holders[txn.id] = _join(existing, mode)
        self._holder_txns[txn.id] = txn

    # -- waiting -----------------------------------------------------------------

    def enqueue_global(self, waiter: Waiter) -> None:
        """Queue a request from a non-holding family (Algorithm 4.2)."""
        root = waiter.txn_id.root
        for queue in self.waiting_families:
            if queue.root == root:
                queue.waiters.append(waiter)
                return
        self.waiting_families.append(
            _FamilyQueue(root=root, site=waiter.txn.node, waiters=[waiter])
        )

    def enqueue_local(self, waiter: Waiter) -> None:
        """Queue an intra-family conflicting request (Algorithm 4.1)."""
        self.local_waiters.append(waiter)

    def remove_waiter(self, txn_id: TxnId) -> bool:
        """Drop a waiter everywhere (deadlock victim or family abort)."""
        removed = False
        for queue in list(self.waiting_families):
            before = len(queue.waiters)
            queue.waiters = [w for w in queue.waiters if w.txn_id != txn_id]
            removed |= len(queue.waiters) != before
            if not queue.waiters:
                self.waiting_families.remove(queue)
        before = len(self.local_waiters)
        self.local_waiters = [w for w in self.local_waiters if w.txn_id != txn_id]
        removed |= len(self.local_waiters) != before
        return removed

    def remove_family_waiters(self, root_serial: int) -> List[Waiter]:
        """Drop every waiter of one family (family abort)."""
        dropped: List[Waiter] = []
        for queue in list(self.waiting_families):
            if queue.root == root_serial:
                dropped.extend(queue.waiters)
                self.waiting_families.remove(queue)
        kept = []
        for waiter in self.local_waiters:
            if waiter.txn_id.root == root_serial:
                dropped.append(waiter)
            else:
                kept.append(waiter)
        self.local_waiters = kept
        return dropped

    def waiting_family_roots(self) -> Tuple[int, ...]:
        return tuple(queue.root for queue in self.waiting_families)

    def has_waiters(self) -> bool:
        return bool(self.waiting_families) or bool(self.local_waiters)

    # -- release processing (rules 3-5 of §4.1) -----------------------------------

    def release_to_parent(self, txn, parent) -> None:
        """Pre-commit: the parent inherits and retains txn's lock.

        Covers both locks *held* by txn and locks it *retains* (rule 3:
        "its parent inherits and retains all of its locks (both held
        and retained)").
        """
        touched = False
        mode = self.holders.pop(txn.id, None)
        self._holder_txns.pop(txn.id, None)
        if mode is not None:
            touched = True
            self._retain(parent, mode)
        retained = self.retainers.pop(txn.id, None)
        self._retainer_txns.pop(txn.id, None)
        if retained is not None:
            touched = True
            self._retain(parent, retained)
        if not touched:
            raise ProtocolError(
                f"{txn.id!r} neither holds nor retains {self.object_id!r}"
            )

    def demote_to_retained(self, txn) -> None:
        """Convert a held lock into a retention by the same transaction.

        Used by optimistic pre-acquisition (§5.1/§6 future work): the
        root pre-acquires a predicted object's lock, then immediately
        demotes it so descendants can acquire it under rule 1 instead
        of tripping the §3.4 ancestor-holder preclusion.
        """
        mode = self.holders.pop(txn.id, None)
        if mode is None:
            raise ProtocolError(
                f"{txn.id!r} does not hold {self.object_id!r}; cannot demote"
            )
        self._holder_txns.pop(txn.id, None)
        self._retain(txn, mode)

    def _retain(self, txn, mode: LockMode) -> None:
        existing = self.retainers.get(txn.id)
        self.retainers[txn.id] = _join(existing, mode)
        self._retainer_txns[txn.id] = txn

    def release_on_abort(self, txn) -> bool:
        """Abort of one transaction (rule 4).

        Returns True when the requester's family no longer holds or
        retains the lock at all, i.e. GlobalLockRelease processing
        (pumping other families) may now make progress.
        """
        self.holders.pop(txn.id, None)
        self._holder_txns.pop(txn.id, None)
        self.retainers.pop(txn.id, None)
        self._retainer_txns.pop(txn.id, None)
        return not self.family_present(txn.id.root)

    def release_family(self, root_serial: int) -> None:
        """Root commit (rule 5): drop every holder/retainer of the family."""
        for txn_id in list(self.holders):
            if txn_id.root == root_serial:
                del self.holders[txn_id]
                del self._holder_txns[txn_id]
        for txn_id in list(self.retainers):
            if txn_id.root == root_serial:
                del self.retainers[txn_id]
                del self._retainer_txns[txn_id]

    def pump(self, allow_recursive_reads: bool = False) -> List[Waiter]:
        """Grant whatever is now grantable; returns the woken waiters.

        Local (same-family) waiters are tried first.  Then waiting
        families are scanned in FIFO order and any family whose head is
        now grantable is admitted (its grantable prefix becomes
        holders; any remainder moves to the local list).

        The scan deliberately does NOT stop at the first ungrantable
        family.  Algorithm 4.4's literal "unlink the next transaction
        list" is strict FIFO, but with retained read locks shared
        across families that policy deadlocks: family A, queued first,
        can be blocked by a lock family B retains, while B's own next
        request sits *behind* A in this queue — grantable, but never
        reached.  Scanning every queued family (rule 1 still decides
        each grant) preserves safety and restores liveness, at the
        price of FIFO fairness the paper's rules already forgo via
        reader preference.
        """
        granted: List[Waiter] = []
        remaining: List[Waiter] = []
        for waiter in self.local_waiters:
            decision = self.decide(waiter.txn, waiter.mode, allow_recursive_reads)
            if decision is GrantDecision.GRANTED:
                self.grant(waiter.txn, waiter.mode)
                granted.append(waiter)
            else:
                remaining.append(waiter)
        self.local_waiters = remaining
        progressed = True
        while progressed:
            progressed = False
            for queue in list(self.waiting_families):
                admitted_any = False
                while queue.waiters:
                    waiter = queue.waiters[0]
                    decision = self.decide(
                        waiter.txn, waiter.mode, allow_recursive_reads
                    )
                    if decision is not GrantDecision.GRANTED:
                        break
                    self.grant(waiter.txn, waiter.mode)
                    granted.append(waiter)
                    queue.waiters.pop(0)
                    admitted_any = True
                    progressed = True
                if not queue.waiters:
                    self.waiting_families.remove(queue)
                elif admitted_any:
                    # Family partially admitted: it now holds the lock,
                    # so its stragglers are intra-family (local) waiters.
                    self.local_waiters.extend(queue.waiters)
                    self.waiting_families.remove(queue)
        return granted

    # -- page map ------------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self.page_map)

    def latest_version(self, page: int) -> int:
        return self.page_map[page].version

    def page_owner(self, page: int) -> NodeId:
        return self.page_map[page].owner

    def apply_commit(self, node: NodeId, dirty_pages, resident_versions) -> None:
        """Global release with dirty info (Algorithm 4.4, commit case).

        ``dirty_pages`` bump the version and move ownership to the
        committing node.  ``resident_versions`` (page -> local version)
        lets clean-but-current pages also claim ownership, which keeps
        the map pointing at a live copy under protocols (COTEC/OTEC)
        that fully refresh the acquiring site.
        """
        dirty = set(dirty_pages)
        for page in dirty:
            entry = self.page_map[page]
            entry.version += 1
            entry.owner = node
        for page, version in resident_versions.items():
            if page in dirty:
                continue
            entry = self.page_map[page]
            if version == entry.version:
                entry.owner = node

    def page_map_snapshot(self) -> Dict[int, PageMapEntry]:
        return {
            page: PageMapEntry(owner=entry.owner, version=entry.version)
            for page, entry in self.page_map.items()
        }
