"""Waits-for-graph deadlock detection over transaction families.

Two-phase locking across competing families can deadlock (family A
holds O1 and waits for O2; family B holds O2 and waits for O1).  The
paper does not address this; we add the standard database solution:
maintain a waits-for graph at family granularity, check for a cycle on
every new wait edge, and abort the *youngest* family in the cycle (the
one whose root has the highest serial — it has done the least work).

Nodes of the graph are root serials.  Edges are derived per directory
entry — "every family queued on entry e waits for every family that
holds or retains e" — and refreshed whenever an entry's holder set or
waiter set changes, so ownership handoffs never leave stale edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.util.ids import ObjectId


class DeadlockDetector:
    """Family-granularity waits-for graph with cycle search."""

    def __init__(self) -> None:
        # entry -> (waiting family roots, blocking family roots)
        self._entry_waits: Dict[ObjectId, tuple] = {}

    def update_entry(self, object_id: ObjectId,
                     waiting: FrozenSet[int], blocking: FrozenSet[int]) -> None:
        """Refresh the wait edges contributed by one directory entry."""
        if not waiting or not blocking:
            self._entry_waits.pop(object_id, None)
            return
        self._entry_waits[object_id] = (frozenset(waiting), frozenset(blocking))

    def clear_entry(self, object_id: ObjectId) -> None:
        self._entry_waits.pop(object_id, None)

    def drop_family(self, root: int) -> None:
        """Remove one family from every edge (crash-aborted families).

        Per-entry refreshes already cover entries the crashed family
        touched; this is the safety net guaranteeing no stale edge can
        keep the dead family in a cycle and no survivor can be chosen
        as a victim of a ghost.
        """
        for object_id in list(self._entry_waits):
            waiting, blocking = self._entry_waits[object_id]
            if root not in waiting and root not in blocking:
                continue
            self.update_entry(object_id, waiting - {root}, blocking - {root})

    def edges(self) -> Dict[int, Set[int]]:
        """Materialized adjacency: family -> families it waits for."""
        adjacency: Dict[int, Set[int]] = {}
        for waiting, blocking in self._entry_waits.values():
            for waiter in waiting:
                targets = adjacency.setdefault(waiter, set())
                targets.update(root for root in blocking if root != waiter)
        return adjacency

    def find_cycle(self, start: int) -> Optional[List[int]]:
        """Return a cycle reachable from ``start``, or None.

        Iterative DFS with an explicit stack; the graph is tiny (one
        node per *blocked* family), so no incremental cleverness is
        needed.
        """
        adjacency = self.edges()
        if start not in adjacency:
            return None
        path: List[int] = []
        on_path: Set[int] = set()
        visited: Set[int] = set()

        def dfs(node: int) -> Optional[List[int]]:
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for target in sorted(adjacency.get(node, ())):
                if target in on_path:
                    cycle_start = path.index(target)
                    return path[cycle_start:]
                if target not in visited:
                    found = dfs(target)
                    if found is not None:
                        return found
            path.pop()
            on_path.discard(node)
            return None

        return dfs(start)

    def pick_victim(self, cycle: List[int]) -> int:
        """Youngest family = highest root serial = least work lost."""
        return max(cycle)

    def waiting_families(self) -> FrozenSet[int]:
        waiting: Set[int] = set()
        for waiters, _blocking in self._entry_waits.values():
            waiting.update(waiters)
        return frozenset(waiting)
