"""Waits-for-graph deadlock detection over transaction families.

Two-phase locking across competing families can deadlock (family A
holds O1 and waits for O2; family B holds O2 and waits for O1).  The
paper does not address this; we add the standard database solution:
maintain a waits-for graph at family granularity, check for a cycle on
every new wait edge, and abort the *youngest* family in the cycle (the
one whose root has the highest serial — it has done the least work).

Nodes of the graph are root serials.  Edges are derived per directory
entry and keyed by *conflict*, not by mere co-presence: each waiting
family's edge set is exactly the holder/retainer families whose modes
its head request conflicts with
(:meth:`repro.gdo.entry.DirectoryEntry.waits_for_edges`), so two
semantically commuting holders never contribute a spurious cycle.
Edges are refreshed whenever an entry's holder set or waiter set
changes, so ownership handoffs never leave stale edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Set

from repro.util.ids import ObjectId


class DeadlockDetector:
    """Family-granularity waits-for graph with cycle search."""

    def __init__(self) -> None:
        # entry -> {waiting family root -> blocking family roots}
        self._entry_waits: Dict[ObjectId, Dict[int, FrozenSet[int]]] = {}
        # Lazily materialized adjacency, shared by every find_cycle
        # call until the next entry refresh.  The deadlock check runs
        # once per *blocked family* per edge change; without the cache
        # each of those checks rebuilt the full adjacency from every
        # entry's contribution — the single hottest cost in the whole
        # engine under contended workloads.
        self._adjacency: Optional[Dict[int, Set[int]]] = None
        # Per-adjacency-generation memos: families proven cycle-free
        # (a completed DFS that found nothing certifies every node it
        # visited — no cycle is reachable from any of them until an
        # edge changes), and sorted neighbor lists (DFS visits
        # neighbors in sorted order for determinism; sorting once per
        # node per generation keeps that order without re-sorting on
        # every visit).
        self._cycle_free: Set[int] = set()
        self._sorted_targets: Dict[int, List[int]] = {}

    def update_entry(self, object_id: ObjectId,
                     edges: Mapping[int, FrozenSet[int]]) -> None:
        """Refresh the wait edges contributed by one directory entry.

        ``edges`` maps each waiting family root to the roots actually
        blocking it on this entry (conflict-keyed, self-edges pruned
        here).  Waiters with no blockers contribute nothing."""
        pruned = {
            waiter: frozenset(blocking) - {waiter}
            for waiter, blocking in edges.items()
            if frozenset(blocking) - {waiter}
        }
        if not pruned:
            if self._entry_waits.pop(object_id, None) is not None:
                self._adjacency = None
            return
        self._entry_waits[object_id] = pruned
        self._adjacency = None

    def clear_entry(self, object_id: ObjectId) -> None:
        if self._entry_waits.pop(object_id, None) is not None:
            self._adjacency = None

    def drop_family(self, root: int) -> None:
        """Remove one family from every edge (crash-aborted families).

        Per-entry refreshes already cover entries the crashed family
        touched; this is the safety net guaranteeing no stale edge can
        keep the dead family in a cycle and no survivor can be chosen
        as a victim of a ghost.
        """
        for object_id in list(self._entry_waits):
            edges = self._entry_waits[object_id]
            if root not in edges and not any(
                root in blocking for blocking in edges.values()
            ):
                continue
            self.update_entry(object_id, {
                waiter: blocking - {root}
                for waiter, blocking in edges.items()
                if waiter != root
            })

    def edges(self) -> Dict[int, Set[int]]:
        """Materialized adjacency: family -> families it waits for.

        Cached between entry refreshes; callers must treat the result
        as read-only (mutating it would corrupt the cache).
        """
        adjacency = self._adjacency
        if adjacency is None:
            adjacency = {}
            for entry_edges in self._entry_waits.values():
                for waiter, blocking in entry_edges.items():
                    targets = adjacency.get(waiter)
                    if targets is None:
                        targets = adjacency[waiter] = set()
                    targets.update(blocking)
            self._adjacency = adjacency
            self._cycle_free.clear()
            self._sorted_targets.clear()
        return adjacency

    def find_cycle(self, start: int) -> Optional[List[int]]:
        """Return a cycle reachable from ``start``, or None.

        DFS in sorted-neighbor order (deterministic).  Nodes certified
        cycle-free by an earlier completed search on the same adjacency
        generation are pruned: no cycle is reachable from them, and no
        cycle through the *current* path can route via them either (it
        would be a cycle reachable from them — contradiction), so
        pruning cannot change which cycle is found.
        """
        adjacency = self.edges()
        if start not in adjacency or start in self._cycle_free:
            return None
        sorted_targets = self._sorted_targets
        path: List[int] = []
        on_path: Set[int] = set()
        visited: Set[int] = set(self._cycle_free)

        def dfs(node: int) -> Optional[List[int]]:
            visited.add(node)
            path.append(node)
            on_path.add(node)
            targets = sorted_targets.get(node)
            if targets is None:
                targets = sorted_targets[node] = sorted(
                    adjacency.get(node, ())
                )
            for target in targets:
                if target in on_path:
                    cycle_start = path.index(target)
                    return path[cycle_start:]
                if target not in visited:
                    found = dfs(target)
                    if found is not None:
                        return found
            path.pop()
            on_path.discard(node)
            return None

        found = dfs(start)
        if found is None:
            # Every node this completed search visited is cycle-free
            # until the next edge refresh invalidates the generation.
            self._cycle_free.update(visited)
        return found

    def pick_victim(self, cycle: List[int]) -> int:
        """Youngest family = highest root serial = least work lost."""
        return max(cycle)

    def waiting_families(self) -> FrozenSet[int]:
        waiting: Set[int] = set()
        for entry_edges in self._entry_waits.values():
            waiting.update(entry_edges)
        return frozenset(waiting)
