"""The partitioned directory service.

Every object's entry lives at exactly one *home node* (round-robin by
object id, the paper's "partitioned" GDO); the lock manager sends
request/grant/release messages to and from that node.  The directory
itself is a passive table — all timing and messaging is charged by the
lock manager so that the same entry logic is reusable from direct unit
tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.gdo.deadlock import DeadlockDetector
from repro.gdo.entry import DirectoryEntry
from repro.obs.tracer import NULL_TRACER
from repro.util.errors import ConfigurationError, ProtocolError
from repro.util.ids import NodeId, ObjectId


class Directory:
    """All GDO entries, partitioned over the cluster's nodes."""

    def __init__(self, nodes: Sequence[NodeId], tracer=None):
        if not nodes:
            raise ConfigurationError("directory needs at least one node")
        self._nodes: List[NodeId] = list(nodes)
        self._entries: Dict[ObjectId, DirectoryEntry] = {}
        self.deadlock = DeadlockDetector()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def home_node(self, object_id: ObjectId) -> NodeId:
        """Round-robin partitioning of entries over nodes."""
        return self._nodes[object_id.value % len(self._nodes)]

    def register(self, object_id: ObjectId, page_count: int,
                 creator_node: NodeId) -> DirectoryEntry:
        if object_id in self._entries:
            raise ProtocolError(f"directory entry for {object_id!r} already exists")
        entry = DirectoryEntry(
            object_id=object_id,
            home_node=self.home_node(object_id),
            page_count=page_count,
            creator_node=creator_node,
        )
        self._entries[object_id] = entry
        self.tracer.gdo_register(object_id, entry.home_node, page_count)
        return entry

    def move_home(self, object_id: ObjectId, new_home: NodeId) -> NodeId:
        """Re-home an entry (adaptive migration); returns the old home.

        Callers (the lock manager, driven by
        :class:`~repro.gdo.migration.HomeMigrationManager`) must only
        move quiescent entries and are responsible for charging the
        handoff message and invalidating holder caches.
        """
        if new_home not in self._nodes:
            raise ConfigurationError(
                f"cannot re-home {object_id!r} to unknown node {new_home!r}"
            )
        entry = self.entry(object_id)
        old_home = entry.home_node
        entry.home_node = new_home
        self.tracer.gdo_migrate(object_id, old_home, new_home)
        return old_home

    def entry(self, object_id: ObjectId) -> DirectoryEntry:
        try:
            return self._entries[object_id]
        except KeyError:
            raise ProtocolError(f"no directory entry for {object_id!r}") from None

    def entries(self) -> Dict[ObjectId, DirectoryEntry]:
        return dict(self._entries)

    def refresh_deadlock_edges(self, object_id: ObjectId) -> None:
        """Re-derive this entry's contribution to the waits-for graph."""
        entry = self.entry(object_id)
        self.deadlock.update_entry(object_id, entry.waits_for_edges())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._entries
