"""Adaptive re-homing of hot directory entries.

The paper's partitioned GDO assigns every entry a fixed home by
round-robin over the cluster (§4.1) — fine when access is uniform, but
a skewed open-loop workload (``repro.load``) hammers a few hot objects
from whichever node their dominant clients run on, and every one of
those acquisitions pays a remote round trip to an arbitrary home.
This module is the directory-side response: track who actually talks
to each entry, and when one node clearly dominates, hand the entry's
home over to that node so its traffic becomes local procedure calls
(local messages cost nothing, per :class:`repro.net.Message.is_local`).

Design constraints that keep the protocol simple and provably safe:

* **Accounting is decayed, not windowed.**  Each entry keeps one
  exponentially decayed access count per node (half-life
  :attr:`MigrationConfig.half_life_s` of *simulated* time), so a node
  that was hot a while ago fades instead of pinning the entry forever.
* **Migration only fires on a quiescent entry** — no holders, no
  retainers, no queued waiters — evaluated by the lock manager at the
  end of a global release, after grants were pumped.  A quiescent
  entry's location is pure accounting: no in-flight grant references
  the old home, so correctness (reference model, invariant checkers)
  is untouched by the move and only the *message pattern* changes.
* **Requests racing a move are forwarded, not lost.**  The lock
  manager snapshots the home before each request send; if the home
  moved while the message was in flight, the old home forwards it
  (one extra hop, charged and traced) — see
  :meth:`repro.txn.locks.LockManager` and DESIGN §11.
* **Holder caches are invalidated** via the existing
  :class:`~repro.gdo.cache.EntryCacheTracker`, so Algorithm 4.1's
  local fast path never consults a stale notion of where the entry
  lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.util.ids import NodeId, ObjectId


@dataclass(frozen=True)
class MigrationConfig:
    """Policy knobs for adaptive home migration.

    Attributes:
        threshold: minimum decayed access count the dominant node must
            have amassed before a move is considered.
        dominance: minimum fraction of the entry's total decayed count
            the dominant node must own (``> 0.5`` so at most one node
            qualifies and ping-ponging between two equal accessors is
            impossible).
        half_life_s: decay half-life in simulated seconds; an idle
            entry's counts halve every ``half_life_s``.
        cooldown_s: minimum simulated time between two migrations of
            the same entry — a brake on thrash under shifting skew.
    """

    threshold: float = 2.0
    dominance: float = 0.55
    half_life_s: float = 0.1
    cooldown_s: float = 0.001

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("migration threshold must be positive")
        if not 0.5 < self.dominance <= 1.0:
            raise ValueError(
                f"dominance must be in (0.5, 1.0], got {self.dominance}"
            )
        if self.half_life_s <= 0:
            raise ValueError("half_life_s must be positive")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")


@dataclass
class MigrationStats:
    """Counters surfaced in run summaries and the claims bench."""

    migrations: int = 0
    forwarded_requests: int = 0
    considered: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "migrations": self.migrations,
            "forwarded_requests": self.forwarded_requests,
            "considered": self.considered,
        }


@dataclass
class _AccessCounts:
    """One entry's decayed per-node access tallies."""

    counts: Dict[NodeId, float] = field(default_factory=dict)
    last_update: float = 0.0
    last_migration: float = float("-inf")

    def decay_to(self, now: float, half_life_s: float) -> None:
        elapsed = now - self.last_update
        if elapsed > 0:
            factor = 0.5 ** (elapsed / half_life_s)
            for node in list(self.counts):
                decayed = self.counts[node] * factor
                if decayed < 1e-9:
                    del self.counts[node]
                else:
                    self.counts[node] = decayed
        self.last_update = now


class HomeMigrationManager:
    """Per-entry access tracking + the move/no-move decision.

    Pure policy: it never touches the network or the directory entry
    itself.  The lock manager calls :meth:`record_access` on every
    global acquisition, asks :meth:`pick_target` when an entry
    quiesces, charges the handoff message, and then calls
    :meth:`note_migrated` once the home has actually flipped.
    """

    def __init__(self, config: MigrationConfig,
                 clock: Callable[[], float]):
        self.config = config
        self._clock = clock
        self._access: Dict[ObjectId, _AccessCounts] = {}
        self.stats = MigrationStats()

    def record_access(self, object_id: ObjectId, node: NodeId) -> None:
        """One global lock operation on ``object_id`` issued by ``node``."""
        tally = self._access.get(object_id)
        if tally is None:
            tally = self._access[object_id] = _AccessCounts(
                last_update=self._clock()
            )
        tally.decay_to(self._clock(), self.config.half_life_s)
        tally.counts[node] = tally.counts.get(node, 0.0) + 1.0

    def pick_target(self, object_id: ObjectId,
                    current_home: NodeId) -> Optional[NodeId]:
        """The node the entry should move to, or ``None`` to stay put."""
        tally = self._access.get(object_id)
        if tally is None:
            return None
        now = self._clock()
        if now - tally.last_migration < self.config.cooldown_s:
            return None
        self.stats.considered += 1
        tally.decay_to(now, self.config.half_life_s)
        total = sum(tally.counts.values())
        if total <= 0:
            return None
        # Deterministic argmax: break count ties by node id.
        dominant, count = min(
            tally.counts.items(), key=lambda kv: (-kv[1], kv[0].value)
        )
        if dominant == current_home:
            return None
        if count < self.config.threshold:
            return None
        if count / total < self.config.dominance:
            return None
        return dominant

    def note_migrated(self, object_id: ObjectId) -> None:
        tally = self._access.get(object_id)
        if tally is not None:
            tally.last_migration = self._clock()
            # Start a fresh observation window at the new home so the
            # very next decision reflects post-move behavior only.
            tally.counts.clear()
        self.stats.migrations += 1

    def note_forwarded(self) -> None:
        self.stats.forwarded_requests += 1
