"""The Global Directory of Objects (GDO).

Per §4.1 the GDO stores, for every shared object, the lock structure of
Figure 1 — ``LockState``, ``ReadCount``, ``HolderPtr`` (the holding
family's ⟨TID,NID⟩ list), ``NonHoldersPtr`` (per-family waiter lists)
— plus the consistency page map recording which node stores the most
up-to-date version of each page.  The directory is partitioned across
nodes by object id; the holding site caches the holder list so that
intra-family lock traffic stays local (the local/global split of
Algorithms 4.1-4.4).

This reproduction adds a waits-for-graph deadlock detector, which the
paper leaves unaddressed (see DESIGN.md, Substitutions), and optional
adaptive home migration (:mod:`repro.gdo.migration`, DESIGN §11) that
re-homes hot entries toward their dominant accessor.
"""

from repro.gdo.entry import (
    DirectoryEntry,
    GrantDecision,
    LockMode,
    LockState,
    PageMapEntry,
    Waiter,
)
from repro.gdo.deadlock import DeadlockDetector
from repro.gdo.directory import Directory
from repro.gdo.cache import EntryCacheTracker
from repro.gdo.migration import (
    HomeMigrationManager,
    MigrationConfig,
    MigrationStats,
)

__all__ = [
    "DirectoryEntry",
    "GrantDecision",
    "LockMode",
    "LockState",
    "PageMapEntry",
    "Waiter",
    "DeadlockDetector",
    "Directory",
    "EntryCacheTracker",
    "HomeMigrationManager",
    "MigrationConfig",
    "MigrationStats",
]
