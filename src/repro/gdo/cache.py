"""Local caching of GDO holder lists.

Section 4.1: "The locally cached portion of a GDO entry for a given
object consists of the entire list of transactions from the family
currently holding the object's lock...  This is exactly the information
needed to manage the current holding transaction's family's access to
the object" — so intra-family lock operations complete without any
message to the entry's home node.

:class:`EntryCacheTracker` records which site currently caches each
entry's holder list and classifies each lock operation as a cache *hit*
(free) or *miss* (round trip to the home node).  A configuration switch
disables caching entirely, turning every operation into a global one —
the ``abl-gdocache`` ablation measures what that costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.ids import NodeId, ObjectId


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class EntryCacheTracker:
    """Tracks, per object, the site caching its holder list (if any)."""

    enabled: bool = True
    _cached_at: Dict[ObjectId, NodeId] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)

    def cache_site(self, object_id: ObjectId) -> Optional[NodeId]:
        return self._cached_at.get(object_id)

    def is_local(self, object_id: ObjectId, node: NodeId) -> bool:
        """Can this lock operation be served from the local cache?

        Records the hit/miss in the stats either way.
        """
        if self.enabled and self._cached_at.get(object_id) == node:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def on_granted(self, object_id: ObjectId, node: NodeId) -> None:
        """A family at ``node`` was granted the lock: the holder list is
        shipped there and cached (Algorithm 4.2's grant message)."""
        if not self.enabled:
            return
        previous = self._cached_at.get(object_id)
        if previous is not None and previous != node:
            self.stats.invalidations += 1
        self._cached_at[object_id] = node

    def on_freed(self, object_id: ObjectId) -> None:
        """The lock went free at the GDO: no site's cache is authoritative."""
        if self._cached_at.pop(object_id, None) is not None:
            self.stats.invalidations += 1

    def invalidate_node(self, node_index: int) -> int:
        """Drop every holder list cached at a crashed node.

        The cached copy died with the node's memory; after recovery the
        site must re-fetch from the home node like any cold site.
        Returns the number of entries invalidated.
        """
        victims = [
            object_id
            for object_id, node in self._cached_at.items()
            if node.value == node_index
        ]
        for object_id in victims:
            del self._cached_at[object_id]
            self.stats.invalidations += 1
        return len(victims)
