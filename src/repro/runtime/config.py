"""Cluster configuration: every knob of the reproduction in one place."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.transfer import OBJECT_GRAIN, PAGE_GRAIN
from repro.faults.plan import FaultPlan
from repro.gdo.migration import MigrationConfig
from repro.net.network import NetworkConfig
from repro.net.presets import FAST_ETHERNET_100M
from repro.net.sizes import SizeModel
from repro.sim.tiebreak import validate_tiebreak
from repro.util.errors import ConfigurationError

_SCHEDULERS = ("round_robin", "random", "least_loaded")


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of one simulated cluster run.

    Attributes:
        num_nodes: number of sites; the paper targets small clusters of
            workstations on a system-area network.
        network: bandwidth / software-cost model (see
            :mod:`repro.net.presets` for the paper's sweep points).
        protocol: ``"cotec"``, ``"otec"``, ``"lotec"``, or ``"rc"``.
        page_size: DSM page size in bytes.
        seed: master seed; all run randomness derives from it.
        allow_recursive_reads: permit a descendant to share a read lock
            an ancestor holds (§3.4 precludes recursion outright; this
            flag relaxes it for the safe read-read case only).
        gdo_cache_enabled: cache holder lists at the holding site
            (§4.1); disabling makes every lock operation global — the
            ``abl-gdocache`` ablation.
        transfer_grain: ``"page"`` ships whole pages; ``"object"``
            ships only the object's bytes on each page (the DSD mode of
            §4.2) — the ``abl-dsd`` ablation.
        max_retries: deadlock-victim retry budget per root.
        retry_backoff_s: base for exponential backoff between retries.
        sizes: on-wire size model for protocol messages.
        scheduler: root-transaction placement policy.
        audit_accesses: record per-invocation predicted-vs-actual
            access sets (used by the conservatism tests; benches turn
            it off).
        recovery: rollback mechanism — ``"undo"`` (slot-granular undo
            logs) or ``"shadow"`` (page snapshots); §4.1 offers both.
        class_protocols: per-class consistency protocol overrides, as
            ``(class name, protocol name)`` pairs — the §6 future-work
            item "different consistency protocols ... on a per-class
            basis".  Classes not listed use ``protocol``.
        semantic_locks: grant commuting method invocations on the same
            object concurrently across families, using per-class
            commutativity tables derived from the access analysis
            (blind ``+=``/``-=`` increments and page-disjoint method
            pairs — DESIGN §15).  Off by default: the plain R/W
            lattice, byte-identical to a build without semantic modes.
        prefetch: optimistic pre-acquisition (§5.1/§6 future work):
            ``"off"``, ``"locks"`` (non-blocking pre-acquisition of
            predicted objects' locks, demoted to retained so
            sub-transactions acquire them locally), or
            ``"locks+pages"`` (also pre-fetch their stale pages).
        batch_transfers: coalesce the page requests of one multi-object
            acquisition into a single ``PAGE_REQUEST``/``PAGE_DATA``
            pair per owner node (paying the software startup cost
            once), when several requested objects' up-to-date pages
            live at the same owner.  Single-object gathers are
            byte-identical either way; disabling reproduces the
            classic one-pair-per-object wire format.
        trace: record every protocol decision (transaction spans, lock
            grants/waits, GDO forwards, page transfers, per-message
            network events) with the :mod:`repro.obs` tracer; off by
            default — the disabled path is a no-op
            :class:`~repro.obs.tracer.NullTracer`.
        tiebreak: same-instant event-ordering policy of the simulation
            engine (see :mod:`repro.sim.tiebreak`).  The default
            ``"fifo"`` keeps runs byte-identical to the historic strict
            schedule order; the other policies (``"random"``,
            ``"lifo"``, ``"writer-first"``, ``"reader-first"``,
            ``"starve-node[:index]"``) deterministically perturb
            tie-breaks for schedule exploration (``repro fuzz``).
        faults: optional :class:`~repro.faults.plan.FaultPlan` enabling
            deterministic fault injection (message loss/dup/jitter,
            node crash windows, lock-wait timeouts).  ``None`` — the
            default — wires the no-op
            :class:`~repro.faults.injector.NullInjector`, which keeps
            runs byte-identical to a build without fault support.
        migration: optional
            :class:`~repro.gdo.migration.MigrationConfig` enabling
            adaptive re-homing of hot GDO entries toward their
            dominant accessor (DESIGN §11).  ``None`` — the default —
            keeps the paper's static round-robin partition.
        transport: the wire backend — ``"sim"`` (the default) delivers
            messages over the virtual clock via
            :class:`~repro.net.network.SimTransport`; ``"tcp"`` runs
            the cluster against real localhost TCP sockets
            (:class:`~repro.net.tcp.TcpTransport`) on a wall-clock
            environment, one endpoint per node (DESIGN §12).
        transport_processes: with ``transport="tcp"``, give each node a
            real OS relay process instead of an asyncio task.
    """

    num_nodes: int = 4
    network: NetworkConfig = field(default_factory=lambda: FAST_ETHERNET_100M)
    protocol: str = "lotec"
    page_size: int = 4096
    seed: int = 0
    allow_recursive_reads: bool = False
    gdo_cache_enabled: bool = True
    transfer_grain: str = PAGE_GRAIN
    max_retries: int = 10
    retry_backoff_s: float = 0.002
    sizes: SizeModel = field(default_factory=SizeModel)
    scheduler: str = "round_robin"
    audit_accesses: bool = True
    recovery: str = "undo"
    class_protocols: tuple = ()
    semantic_locks: bool = False
    prefetch: str = "off"
    batch_transfers: bool = True
    trace: bool = False
    tiebreak: str = "fifo"
    faults: Optional[FaultPlan] = None
    migration: Optional[MigrationConfig] = None
    transport: str = "sim"
    transport_processes: bool = False

    def __post_init__(self) -> None:
        if self.transport not in ("sim", "tcp"):
            raise ConfigurationError(
                f"transport must be 'sim' or 'tcp', got {self.transport!r}"
            )
        if self.transport_processes and self.transport != "tcp":
            raise ConfigurationError(
                "transport_processes requires transport='tcp'"
            )
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be at least 1")
        if self.page_size < 64:
            raise ConfigurationError("page_size must be at least 64 bytes")
        if self.transfer_grain not in (PAGE_GRAIN, OBJECT_GRAIN):
            raise ConfigurationError(
                f"transfer_grain must be {PAGE_GRAIN!r} or {OBJECT_GRAIN!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s must be non-negative")
        if self.scheduler not in _SCHEDULERS:
            raise ConfigurationError(
                f"scheduler must be one of {_SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.recovery not in ("undo", "shadow"):
            raise ConfigurationError(
                f"recovery must be 'undo' or 'shadow', got {self.recovery!r}"
            )
        if self.prefetch not in ("off", "locks", "locks+pages"):
            raise ConfigurationError(
                f"prefetch must be 'off', 'locks', or 'locks+pages', "
                f"got {self.prefetch!r}"
            )
        for pair in self.class_protocols:
            if (
                not isinstance(pair, tuple) or len(pair) != 2
                or not all(isinstance(part, str) for part in pair)
            ):
                raise ConfigurationError(
                    "class_protocols must be a tuple of "
                    "(class name, protocol name) string pairs"
                )
        validate_tiebreak(self.tiebreak)
        if self.faults is not None:
            if not isinstance(self.faults, FaultPlan):
                raise ConfigurationError(
                    f"faults must be a FaultPlan, got {self.faults!r}"
                )
            if self.faults.max_fault_node_index >= self.num_nodes:
                raise ConfigurationError(
                    f"fault plan {self.faults.name!r} names node "
                    f"{self.faults.max_fault_node_index} (crash, "
                    f"partition, or slow-node event) but the cluster "
                    f"has only {self.num_nodes} node(s)"
                )
        if self.migration is not None and not isinstance(
            self.migration, MigrationConfig
        ):
            raise ConfigurationError(
                f"migration must be a MigrationConfig, got {self.migration!r}"
            )
        if self.sizes.page_bytes != self.page_size:
            # Keep the wire model and the layout engine in agreement.
            object.__setattr__(
                self, "sizes", replace(self.sizes, page_bytes=self.page_size)
            )

    def with_protocol(self, protocol: str) -> "ClusterConfig":
        """The same run parameters under a different protocol — the
        core comparison pattern of every experiment."""
        return replace(self, protocol=protocol)

    def with_network(self, network: NetworkConfig) -> "ClusterConfig":
        return replace(self, network=network)

    def with_faults(self, faults: Optional[FaultPlan]) -> "ClusterConfig":
        """The same run parameters under a fault plan (or none)."""
        return replace(self, faults=faults)
