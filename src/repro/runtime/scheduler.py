"""Root-transaction placement.

Section 2: "the available transactions need only be distributed across
the available processors to balance the computational load.  This can
easily be done within a DSM system."  Three standard policies are
provided; experiments use round-robin for determinism.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId
from repro.util.rng import SeededRNG


class Scheduler:
    """Chooses the node at which each root transaction executes."""

    def __init__(self, nodes: Sequence[NodeId], policy: str, rng: SeededRNG):
        if not nodes:
            raise ConfigurationError("scheduler needs at least one node")
        self.nodes: List[NodeId] = list(nodes)
        self.policy = policy
        self._rng = rng
        self._next = 0
        self._active: Dict[NodeId, int] = {node: 0 for node in self.nodes}

    def pick_node(self) -> NodeId:
        if self.policy == "round_robin":
            node = self.nodes[self._next % len(self.nodes)]
            self._next += 1
        elif self.policy == "random":
            node = self._rng.choice(self.nodes)
        elif self.policy == "least_loaded":
            node = min(self.nodes, key=lambda n: (self._active[n], n.value))
        else:
            raise ConfigurationError(f"unknown scheduler policy {self.policy!r}")
        return node

    def notify_start(self, node: NodeId) -> None:
        self._active[node] += 1

    def notify_end(self, node: NodeId) -> None:
        if self._active[node] <= 0:
            raise ConfigurationError(f"notify_end without start for {node!r}")
        self._active[node] -= 1

    def load_snapshot(self) -> Dict[NodeId, int]:
        return dict(self._active)
