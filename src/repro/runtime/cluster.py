"""The Cluster facade: the library's main entry point."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core import ProtocolSuite, make_protocol
from repro.faults.crash import CrashController
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.faults.recovery import RecoveryManager
from repro.faults.wal import NULL_WAL, WalSet
from repro.gdo.cache import EntryCacheTracker
from repro.gdo.directory import Directory
from repro.gdo.migration import HomeMigrationManager
from repro.memory.store import NodeStore
from repro.net.network import Network
from repro.objects.registry import ObjectHandle, ObjectMeta, ObjectRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.objects.schema import ClassSchema, schema_of
from repro.runtime.config import ClusterConfig
from repro.runtime.executor import Executor
from repro.runtime.scheduler import Scheduler
from repro.sim import Environment, Process
from repro.sim.tiebreak import make_tiebreak
from repro.txn.locks import LockManager
from repro.util.errors import ConfigurationError, ProtocolError
from repro.util.ids import IdAllocator, NodeId, ObjectId
from repro.util.rng import SeededRNG


@dataclass(frozen=True)
class CreationRecord:
    """One object creation, for serial replay by the oracle."""

    object_id: ObjectId
    schema: ClassSchema
    node: NodeId
    initial: Tuple  # sorted (attr, value) pairs for scalars


class TxnTicket:
    """Handle for a submitted root transaction."""

    def __init__(self, process: Process, node: NodeId, label: str):
        self._process = process
        self.node = node
        self.label = label

    @property
    def done(self) -> bool:
        return self._process.triggered

    def result(self):
        """Result of the root transaction; raises what it raised.

        Only valid after the simulation has run the transaction to
        completion (``Cluster.run``)."""
        if not self._process.triggered:
            raise ConfigurationError(
                f"transaction {self.label!r} has not finished; call "
                f"Cluster.run() first"
            )
        if not self._process.ok:
            raise self._process.value
        return self._process.value


class Cluster:
    """A simulated DSM cluster running one consistency protocol.

    Construction wires together every substrate: the simulation
    environment, the network, per-node stores, the partitioned GDO
    with holder-list caching, the O2PL lock manager, and the selected
    consistency protocol.
    """

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides):
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            raise ConfigurationError(
                "pass either a ClusterConfig or keyword overrides, not both"
            )
        self.config = config
        tiebreak = make_tiebreak(config.tiebreak, config.seed,
                                 config.num_nodes)
        if config.transport == "tcp":
            from repro.sim.realtime import WallClockEnvironment

            self.env = WallClockEnvironment(tiebreak=tiebreak)
        else:
            self.env = Environment(tiebreak=tiebreak)
        self.tracer = (
            Tracer(
                clock=lambda: self.env.now,
                clock_kind="wall" if config.transport == "tcp" else "virtual",
            )
            if config.trace else NULL_TRACER
        )
        self.env.tracer = self.tracer
        self.rng = SeededRNG(config.seed)
        self.alloc = IdAllocator()
        self.nodes: List[NodeId] = [
            self.alloc.next_node() for _ in range(config.num_nodes)
        ]
        self.injector = (
            FaultInjector(config.faults, self.rng.derive("faults"))
            if config.faults is not None else NULL_INJECTOR
        )
        if config.transport == "tcp":
            from repro.net.tcp import TcpTransport

            self.network = TcpTransport(
                self.env, config.network, tracer=self.tracer,
                injector=self.injector,
                processes=config.transport_processes,
            )
        else:
            self.network = Network(self.env, config.network,
                                   tracer=self.tracer,
                                   injector=self.injector)
        self.stores: Dict[NodeId, NodeStore] = {
            node: NodeStore(node) for node in self.nodes
        }
        self.registry = ObjectRegistry()
        self.directory = Directory(self.nodes, tracer=self.tracer)
        self.cache = EntryCacheTracker(enabled=config.gdo_cache_enabled)
        self.migration: Optional[HomeMigrationManager] = None
        if config.migration is not None and config.num_nodes > 1:
            # On one node every entry is already home; tracking would
            # only burn cycles without ever proposing a move.
            self.migration = HomeMigrationManager(
                config.migration, clock=lambda: self.env.now
            )
        # Each node's durable write-ahead record, kept only when crashes
        # are planned: fault-free runs stay byte-identical through the
        # no-op NULL_WAL.
        self.wal = (
            WalSet(config.num_nodes)
            if config.faults is not None and config.faults.crashes
            else NULL_WAL
        )
        self.lockmgr = LockManager(
            self.env, self.network, self.directory, config.sizes, self.cache,
            allow_recursive_reads=config.allow_recursive_reads,
            tracer=self.tracer, injector=self.injector,
            migration=self.migration, wal=self.wal,
        )
        def protocol_factory(name):
            return make_protocol(
                name, env=self.env, network=self.network,
                sizes=config.sizes, stores=self.stores,
                grain=config.transfer_grain, directory=self.directory,
                tracer=self.tracer,
                batch_transfers=config.batch_transfers,
            )

        self.protocol = ProtocolSuite.build(
            protocol_factory, config.protocol, config.class_protocols
        )
        self.executor = Executor(
            self.env, config, self.alloc, self.stores, self.directory,
            self.lockmgr, self.protocol, self.rng.derive("executor"),
            tracer=self.tracer, injector=self.injector, wal=self.wal,
        )
        self.executor._registry = self.registry
        self.scheduler = Scheduler(
            self.nodes, config.scheduler, self.rng.derive("scheduler")
        )
        self.recovery: Optional[RecoveryManager] = None
        self.crash_controller: Optional[CrashController] = None
        if config.faults is not None and (config.faults.crashes
                                          or config.faults.partitions):
            if config.faults.crashes:
                self.recovery = RecoveryManager(
                    self.env, self.injector, self.directory, self.cache,
                    self.lockmgr, self.wal, self.nodes, self.tracer,
                )
            self.crash_controller = CrashController(
                self.env, self.injector, self.lockmgr, self.cache,
                self.executor, self.tracer, recovery=self.recovery,
            )
            self.crash_controller.schedule()
        self.creation_log: List[CreationRecord] = []
        self._layout_cache: Dict[int, object] = {}
        self._tickets: List[TxnTicket] = []

    # ------------------------------------------------------------------
    # Object creation
    # ------------------------------------------------------------------

    def create(self, cls_or_schema: Union[type, ClassSchema],
               node: Optional[NodeId] = None,
               initial: Optional[Dict[str, object]] = None) -> ObjectHandle:
        """Materialize a new shared object, fully resident at ``node``
        (default: chosen round-robin) with all pages at version 1."""
        schema = schema_of(cls_or_schema)
        layout = self._layout_cache.get(id(schema))
        if layout is None:
            layout = schema.make_layout(self.config.page_size)
            self._layout_cache[id(schema)] = layout
            if self.config.semantic_locks:
                self._register_commutativity(schema, layout)
        if node is None:
            node = self.scheduler.pick_node()
        elif node not in self.stores:
            raise ConfigurationError(f"unknown node {node!r}")
        object_id = self.alloc.next_object()
        meta = ObjectMeta(
            object_id=object_id, schema=schema, layout=layout,
            home_node=self.directory.home_node(object_id), creator_node=node,
        )
        handle = self.registry.register(meta)
        initial = dict(initial or {})
        unknown = set(initial) - set(layout.attribute_names())
        if unknown:
            raise ConfigurationError(
                f"initial values name unknown attributes {sorted(unknown)}"
            )
        slot_values = {}
        for name, value in initial.items():
            if layout.attribute(name).is_array:
                raise ConfigurationError(
                    f"array attribute {name!r} cannot take a scalar initial "
                    f"value; write elements transactionally instead"
                )
            slot_values[(name, 0)] = value
        self.stores[node].create_object(object_id, layout, slot_values)
        self.directory.register(object_id, layout.page_count, node)
        self.wal.record_home(
            self.directory.entry(object_id).home_node.value, object_id
        )
        self.creation_log.append(
            CreationRecord(
                object_id=object_id, schema=schema, node=node,
                initial=tuple(sorted(initial.items())),
            )
        )
        return handle

    def _register_commutativity(self, schema: ClassSchema, layout) -> None:
        """Build and install one class's commutativity table.

        Shadow recovery snapshots whole pages, which cannot roll back
        one family's increments without clobbering a concurrent
        family's — increment-based commutativity is only sound with
        slot-granular undo logs.  The honest table is also emitted as a
        ``lock.commtable`` trace instant so the post-hoc checkers judge
        every semantic grant against exactly what the locks used.
        """
        from repro.analysis.commutativity import build_commutativity

        table = build_commutativity(
            schema, layout,
            allow_increments=(self.config.recovery == "undo"),
        )
        self.lockmgr.register_commutativity(schema.name, table)
        if self.tracer.enabled:
            self.tracer.instant("lock.commtable", "lock",
                                table=table.to_trace())

    def handle(self, object_id: ObjectId) -> ObjectHandle:
        return self.registry.handle(object_id)

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------

    def submit(self, handle: ObjectHandle, method_name: str, *args,
               node: Optional[NodeId] = None, label: str = "",
               delay: float = 0.0) -> TxnTicket:
        """Schedule a root transaction; returns a ticket.

        ``delay`` postpones the start by that much simulated time
        (workload arrival pacing)."""
        handle.meta.schema.method_spec(method_name)  # fail fast
        if node is None:
            node = self.scheduler.pick_node()
        elif node not in self.stores:
            raise ConfigurationError(f"unknown node {node!r}")
        if delay < 0:
            raise ConfigurationError("delay must be non-negative")
        self.scheduler.notify_start(node)

        def tracked():
            if delay > 0:
                yield self.env.timeout(delay)
            try:
                # `process` is bound below, before the bootstrap step
                # ever runs this body; passing it lets a node crash
                # interrupt the attempt mid-coroutine.
                result = yield from self.executor.run_root(
                    node, handle, method_name, args, label=label,
                    process=process,
                )
            finally:
                self.scheduler.notify_end(node)
            return result

        process = self.env.process(
            tracked(), name=label or f"{handle.class_name}.{method_name}"
        )
        ticket = TxnTicket(process, node, label or method_name)
        self._tickets.append(ticket)
        return ticket

    def run(self, until: Optional[float] = None) -> float:
        """Advance the cluster until idle (or ``until``).

        Brings the transport up on first use (the simulation backend's
        ``start`` is a no-op; the TCP backend binds its sockets here,
        so constructing a Cluster stays cheap and side-effect free).
        """
        self.network.start(self.nodes)
        return self.env.run(until)

    def close(self) -> None:
        """Release transport resources (idempotent).

        Required after TCP runs — sockets, the background loop thread,
        and any relay processes are torn down here; a no-op for the
        simulation backend."""
        self.network.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def call(self, handle: ObjectHandle, method_name: str, *args,
             node: Optional[NodeId] = None):
        """Submit one root transaction, run to completion, return its
        result (raising whatever it raised)."""
        ticket = self.submit(handle, method_name, *args, node=node)
        self.run()
        return ticket.result()

    def tickets(self) -> Tuple[TxnTicket, ...]:
        return tuple(self._tickets)

    # ------------------------------------------------------------------
    # Authoritative state access (debug / verification; not a txn API)
    # ------------------------------------------------------------------

    def read_object(self, handle: ObjectHandle) -> Dict[str, object]:
        """Latest committed value of every attribute of an object,
        gathered from the page owners recorded in the GDO page map.
        Arrays come back as lists."""
        meta = handle.meta
        entry = self.directory.entry(meta.object_id)
        result: Dict[str, object] = {}
        for spec in meta.layout.attributes:
            if spec.is_array:
                result[spec.name] = [
                    self._authoritative_slot(meta, entry, (spec.name, index))
                    for index in range(spec.count)
                ]
            else:
                result[spec.name] = self._authoritative_slot(
                    meta, entry, (spec.name, 0)
                )
        return result

    def read_attr(self, handle: ObjectHandle, name: str):
        return self.read_object(handle)[name]

    def _authoritative_slot(self, meta: ObjectMeta, entry, slot):
        # Writes dirty every page of a slot together, and page installs
        # copy whole slot values, so any node owning (holding the
        # latest version of) *any* page of the slot has the current
        # value.  Under lazy protocols a slot's pages can legitimately
        # be owned by different nodes; all owners must agree.
        pages = sorted(meta.layout.slot_pages(*slot))
        owners = sorted({entry.page_owner(page) for page in pages})
        values = [
            self.stores[owner].read_slot(meta.object_id, slot)
            for owner in owners
        ]
        if any(value != values[0] for value in values[1:]):
            raise ProtocolError(
                f"slot {slot} of {meta.object_id!r}: owners {owners} "
                f"disagree on the current value ({values})"
            )
        return values[0]

    def state_digest(self) -> Dict[int, Dict[str, object]]:
        """Authoritative state of every object, keyed by object id value."""
        return {
            object_id.value: self.read_object(self.registry.handle(object_id))
            for object_id in self.registry.all_objects()
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def network_stats(self):
        return self.network.stats

    @property
    def txn_stats(self):
        return self.executor.txn_stats

    @property
    def lock_stats(self):
        return self.lockmgr.stats

    @property
    def cache_stats(self):
        return self.cache.stats

    @property
    def fault_stats(self):
        return self.injector.stats

    @property
    def migration_stats(self):
        """Home-migration counters; ``None`` when migration is off."""
        return self.migration.stats if self.migration is not None else None

    @property
    def metrics(self):
        """The tracer's metrics registry; ``None`` when tracing is off."""
        return self.tracer.metrics

    @property
    def trace_events(self):
        return self.tracer.events

    @property
    def prediction_stats(self):
        return self.protocol.prediction_stats

    @property
    def commit_log(self):
        return self.executor.commit_log

    @property
    def audit(self):
        return self.executor.audit

    def stats_summary(self) -> Dict[str, object]:
        return {
            "protocol": self.config.protocol,
            "network": self.network_stats.snapshot(),
            "transactions": self.txn_stats.snapshot(),
            "locks": self.lock_stats.snapshot(),
            "prediction": self.protocol.snapshot(),
            "faults": {
                "plan": (self.config.faults.name
                         if self.config.faults is not None else None),
                **self.fault_stats.snapshot(),
            },
            "migration": (
                self.migration.stats.snapshot()
                if self.migration is not None else None
            ),
        }
