"""Runtime: the public API tying substrates into a usable system.

Typical use::

    from repro.runtime import Cluster, ClusterConfig

    cluster = Cluster(ClusterConfig(num_nodes=4, protocol="lotec"))
    account = cluster.create(Account, initial={"balance": 100})
    cluster.call(account, "deposit", 50)
    assert cluster.read_attr(account, "balance") == 150

Root transactions are submitted with :meth:`Cluster.submit` (returning
a ticket) or the submit-and-run shorthand :meth:`Cluster.call`; the
scheduler spreads roots over nodes — "the available transactions need
only be distributed across the available processors to balance the
computational load" (§2).
"""

from repro.runtime.config import ClusterConfig
from repro.runtime.cluster import Cluster, TxnTicket
from repro.runtime.context import InvocationRequest, TxnContext
from repro.runtime.executor import AccessAudit, CommitRecord
from repro.runtime.scheduler import Scheduler
from repro.runtime.verify import (
    check_conflict_serializability,
    check_serializability,
    replay_serially,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "TxnTicket",
    "TxnContext",
    "InvocationRequest",
    "CommitRecord",
    "AccessAudit",
    "Scheduler",
    "check_serializability",
    "check_conflict_serializability",
    "replay_serially",
]
