"""Transaction context: the ``ctx`` handed to every method body.

The context is the runtime half of the paper's automatic
synchronization story: the user never locks anything — attribute
access flows through :meth:`read_slot` / :meth:`write_slot` (via the
instrumented ``self``), sub-transactions are spawned by yielding
:meth:`invoke`, and everything else (locks, transfers, undo, dirty
tracking) happens underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

from repro.memory.layout import Slot
from repro.objects.registry import ObjectHandle, ObjectMeta
from repro.util.errors import ConfigurationError, ProtocolError, TransactionAborted


@dataclass(frozen=True)
class InvocationRequest:
    """A sub-transaction request produced by :meth:`TxnContext.invoke`.

    Method bodies *yield* these; the executor turns each into a child
    transaction and resumes the body with the child's result.
    """

    handle: ObjectHandle
    method_name: str
    args: Tuple


class TxnContext:
    """Runtime services scoped to one executing [sub-]transaction."""

    def __init__(self, runtime, txn, meta: ObjectMeta, spec,
                 allow_invoke: bool, merger=None,
                 increments: frozenset = frozenset()):
        self._runtime = runtime
        self.txn = txn
        self._meta = meta
        self._spec = spec
        self._allow_invoke = allow_invoke
        # Semantic lock modes (DESIGN §15): attributes this invocation
        # updates as blind increments are recorded in the merger as
        # store-virtual deltas instead of written through.
        self._merger = merger
        self._increments = increments
        self.actual_reads: Set[str] = set()
        self.actual_writes: Set[str] = set()

    # -- user-facing API ----------------------------------------------------

    @property
    def txn_id(self):
        return self.txn.id

    @property
    def node(self):
        return self.txn.node

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._runtime.env.now

    def invoke(self, handle: ObjectHandle, method_name: str,
               *args) -> InvocationRequest:
        """Request a sub-transaction; must be *yielded* by the method.

        Only generator methods can suspend, so only they may invoke:
        declare the method with a ``yield`` (``result = yield
        ctx.invoke(obj, "m", ...)``).
        """
        if not self._allow_invoke:
            raise ConfigurationError(
                f"method on {self._meta.object_id!r} is not a generator; "
                f"only generator methods (containing 'yield') may invoke "
                f"sub-transactions"
            )
        if not isinstance(handle, ObjectHandle):
            raise TypeError(
                f"invoke() needs an ObjectHandle, got {type(handle).__name__}"
            )
        handle.meta.schema.method_spec(method_name)  # fail fast on typos
        return InvocationRequest(handle=handle, method_name=method_name,
                                 args=tuple(args))

    def abort(self, reason: str = "user") -> None:
        """Abort the current transaction (undone and, for a
        sub-transaction, reported to the parent as an exception it may
        catch to retry — §3.2's re-execution allowance)."""
        raise TransactionAborted(self.txn.id, reason)

    # -- slot access (called by the instrumented proxy) ------------------------

    def read_slot(self, meta: ObjectMeta, slot: Slot):
        self._check_same_object(meta)
        pages = meta.layout.slot_pages(*slot)
        if slot[0] in self._increments:
            # Commuting co-holders commit version bumps on increment
            # pages mid-hold; the local bytes are irrelevant to delta
            # arithmetic, so don't chase them (exhaustive-transfer
            # protocols would reject the mid-hold staleness outright).
            self._materialize(meta, pages)
        else:
            self._ensure_current(meta, pages, is_write=False)
        self._touch(meta, slot[0], pages, is_write=False)
        value = self._store().read_slot(meta.object_id, slot)
        if self._merger is not None:
            # Family-visible value = store + the family's own live
            # deltas (tracked increments never reach the store).
            adjust = self._merger.family_adjustment(
                self.txn, meta.object_id, slot
            )
            if adjust:
                value = value + adjust
        return value

    def write_slot(self, meta: ObjectMeta, slot: Slot, value) -> None:
        self._check_same_object(meta)
        self._check_write_allowed(meta, slot[0])
        pages = meta.layout.slot_pages(*slot)
        if slot[0] not in self._increments:
            self._ensure_current(meta, pages, is_write=True)
        store = self._store()
        if self._merger is not None:
            if slot[0] in self._increments:
                # Blind increment under a semantic mode: record the
                # delta, leave the store's committed bytes alone (no
                # undo frame — abort just drops the delta), but keep
                # the dirty/touch bookkeeping so commit publishes the
                # slot's pages from this node.  Staleness is not
                # chased (see read_slot); only residency matters.
                self._materialize(meta, pages)
                old = store.read_slot(meta.object_id, slot)
                adjust = self._merger.family_adjustment(
                    self.txn, meta.object_id, slot
                )
                self._merger.record(self.txn, meta.object_id, slot,
                                    value - old - adjust)
                self.txn.record_dirty(meta.object_id, pages)
                self._touch(meta, slot[0], pages, is_write=True)
                return
            adjust = self._merger.plain_write_adjustment(
                self.txn, meta.object_id, slot
            )
            if adjust:
                # Keep the store satisfying family-visible = store +
                # family deltas around a plain overwrite.
                value = value - adjust
        self.txn.undo.before_write(store, meta.object_id, slot, pages)
        store.write_slot(meta.object_id, slot, value)
        self.txn.record_dirty(meta.object_id, pages)
        self._touch(meta, slot[0], pages, is_write=True)

    # -- internals ----------------------------------------------------------------

    def _store(self):
        return self._runtime.stores[self.txn.node]

    def _check_same_object(self, meta: ObjectMeta) -> None:
        if meta.object_id != self._meta.object_id:
            raise ProtocolError(
                f"transaction {self.txn.id!r} on {self._meta.object_id!r} "
                f"touched {meta.object_id!r} directly; other objects are "
                f"reached only via ctx.invoke()"
            )

    def _check_write_allowed(self, meta: ObjectMeta, attr: str) -> None:
        """Writes must be covered by the method's predicted write set.

        The conservative analysis guarantees this; an explicit
        ``writes=`` annotation that lied is tolerated only when the
        method still took a write lock (some other attribute was
        declared) — the miss is repaired and counted.  A write under a
        read lock would break serializability and is refused.
        """
        spec = self._spec
        if attr in spec.access.writes:
            return
        if not spec.is_update:
            raise ProtocolError(
                f"method {spec.name!r} wrote attribute {attr!r} under a READ "
                f"lock: its writes= annotation declared no writes, which is "
                f"unsound"
            )

    def _materialize(self, meta: ObjectMeta, pages) -> None:
        """Residency-only fetch for tracked increment slots: pull the
        object in on first touch at this node, but never refetch merely
        because a commuting co-holder's commit bumped the version."""
        store = self._store()
        if not store.has_object(meta.object_id) or any(
            store.page_version(meta.object_id, page) == 0 for page in pages
        ):
            self._ensure_current(meta, pages, is_write=True)

    def _ensure_current(self, meta: ObjectMeta, pages, is_write: bool) -> None:
        entry = self._runtime.directory.entry(meta.object_id)
        store = self._store()
        stale = [
            page
            for page in pages
            if store.page_version(meta.object_id, page) < entry.latest_version(page)
        ]
        if not stale:
            return
        delay = self._runtime.protocol.for_meta(meta).on_stale_access(
            self.txn, meta, entry.page_map, stale, is_write
        )
        root = self.txn.root
        root.pending_delay += delay

    def _touch(self, meta: ObjectMeta, attr: str, pages, is_write: bool) -> None:
        if is_write:
            self.actual_writes.add(attr)
        else:
            self.actual_reads.add(attr)
        root = self.txn.root
        root.touch_pages.setdefault(meta.object_id, set()).update(pages)
