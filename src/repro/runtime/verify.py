"""Serializability oracle.

O2PL here is *strict* (every lock is held to root commit/abort), so a
concurrent run must be equivalent to executing the committed roots
serially in commit order.  The oracle replays the recorded creations
and commits on a fresh single-node cluster and compares (a) the final
authoritative state of every object and (b) every root's return value.
Any divergence means a consistency or locking bug — this is the main
end-to-end correctness check of the reproduction, and every protocol
must pass it on random workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.gdo.entry import LockMode
from repro.runtime.cluster import Cluster
from repro.runtime.config import ClusterConfig
from repro.runtime.executor import freeze_args, thaw_args
from repro.txn.semantic import base_of
from repro.util.ids import ObjectId


def _grant_conflict(tables: Dict, left, right) -> bool:
    """Conflict between two recorded grant modes, judged against the
    lock manager's *honest* commutativity registry — not the tables
    the mode objects carry, which a test mutation may have wrapped."""
    left_tag = getattr(left, "tag", None)
    right_tag = getattr(right, "tag", None)
    if left_tag is not None and right_tag is not None:
        left_cls, _, left_method = left_tag.partition(".")
        right_cls, _, right_method = right_tag.partition(".")
        table = tables.get(left_cls)
        if (left_cls == right_cls and table is not None
                and table.commutes(left_method, right_method)):
            return False
    return (base_of(left) is LockMode.WRITE
            or base_of(right) is LockMode.WRITE)


@dataclass
class VerificationReport:
    """Outcome of one serializability check."""

    equivalent: bool
    state_mismatches: List[str] = field(default_factory=list)
    result_mismatches: List[str] = field(default_factory=list)
    committed_roots: int = 0

    def __bool__(self) -> bool:
        return self.equivalent


def replay_serially(cluster: Cluster,
                    config: Optional[ClusterConfig] = None) -> Cluster:
    """Re-execute a cluster's committed history on one node, serially.

    Object ids are allocated in creation order on both clusters, so
    identity is preserved by construction.
    """
    if config is None:
        # faults=None: the serial oracle must replay the *committed*
        # history on a clean cluster — re-injecting the fault plan
        # would perturb (or, with crash events, outright reject) the
        # single-node replay.  tiebreak="fifo" likewise: the replay is
        # the reference, so it must not inherit a perturbed schedule.
        # transport="sim" always: the oracle is a deterministic
        # single-node re-execution, so real sockets would add nothing
        # but wall-clock time and nondeterminism.
        # semantic_locks=False: the replay is the *plain* serial
        # semantics every semantic grant must be equivalent to — the
        # oracle must not inherit the relaxation it is judging.
        config = replace(
            cluster.config, num_nodes=1, scheduler="round_robin",
            audit_accesses=False, faults=None, tiebreak="fifo",
            transport="sim", transport_processes=False,
            semantic_locks=False,
        )
    serial = Cluster(config)
    for record in cluster.creation_log:
        handle = serial.create(record.schema, initial=dict(record.initial))
        if handle.object_id != record.object_id:
            raise RuntimeError(
                f"replay id drift: {handle.object_id!r} vs {record.object_id!r}"
            )
    for record in cluster.commit_log:
        handle = serial.handle(record.object_id)
        args = thaw_args(
            record.frozen_args,
            lambda value: serial.handle(ObjectId(value)),
        )
        serial.call(handle, record.method_name, *args)
    return serial


def check_serializability(cluster: Cluster) -> VerificationReport:
    """Replay serially and diff states and results."""
    serial = replay_serially(cluster)
    report = VerificationReport(
        equivalent=True, committed_roots=len(cluster.commit_log)
    )
    concurrent_state = cluster.state_digest()
    serial_state = serial.state_digest()
    for object_value in sorted(set(concurrent_state) | set(serial_state)):
        left = concurrent_state.get(object_value)
        right = serial_state.get(object_value)
        if left != right:
            report.equivalent = False
            report.state_mismatches.append(
                f"O{object_value}: concurrent={left!r} serial={right!r}"
            )
    for index, (concurrent_rec, serial_rec) in enumerate(
        zip(cluster.commit_log, serial.commit_log)
    ):
        if freeze_args(concurrent_rec.result) != freeze_args(serial_rec.result):
            report.equivalent = False
            report.result_mismatches.append(
                f"commit #{index} ({concurrent_rec.method_name}): "
                f"concurrent={concurrent_rec.result!r} "
                f"serial={serial_rec.result!r}"
            )
    return report


def check_conflict_serializability(cluster: Cluster) -> VerificationReport:
    """Independent second oracle: precedence-graph acyclicity.

    Built from the lock manager's per-object grant history: for each
    object, every *conflicting* pair of grants (any pair involving a
    WRITE) to two committed families creates a precedence edge
    earlier -> later.  Strict O2PL must make this graph acyclic;
    unlike the replay oracle this needs no re-execution and catches
    ordering bugs even when final states happen to coincide.
    """
    report = VerificationReport(
        equivalent=True, committed_roots=len(cluster.commit_log)
    )
    # Aborted families rolled back: their accesses create no real
    # dependencies, so only committed families enter the graph.
    committed = {record.root_serial for record in cluster.commit_log}
    # Precedence edges: for every object, every conflicting pair of
    # grants to different families orders earlier -> later (both
    # WR/WW order dependencies and RW anti-dependencies — adjacency
    # alone would miss a reader's edge to a later writer).
    edges: Dict[int, set] = {}
    families = set()
    tables = cluster.lockmgr.commutativity_tables()
    for history in cluster.lockmgr.grant_history.values():
        committed_history = [
            grant for grant in history if grant[0] in committed
        ]
        for index, (later, later_mode, _time) in enumerate(committed_history):
            for earlier, earlier_mode, _etime in committed_history[:index]:
                if earlier == later:
                    continue
                # Non-conflicting grants create no dependency: R/R on
                # the plain lattice, plus commuting semantic pairs.
                if not _grant_conflict(tables, earlier_mode, later_mode):
                    continue
                edges.setdefault(earlier, set()).add(later)
                families.update((earlier, later))
    # Cycle check: iterative three-colour DFS.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {family: WHITE for family in families}
    for start in sorted(families):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(edges.get(start, ()))))]
        color[start] = GREY
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for target in iterator:
                if color.get(target, WHITE) == GREY:
                    report.equivalent = False
                    report.state_mismatches.append(
                        f"precedence cycle through families "
                        f"{node} -> {target}"
                    )
                elif color.get(target, WHITE) == WHITE:
                    color[target] = GREY
                    stack.append(
                        (target, iter(sorted(edges.get(target, ()))))
                    )
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return report
