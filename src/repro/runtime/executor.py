"""Transaction execution engine.

Maps the paper's model onto simulation processes:

* ``run_root`` — the run-time system's half of §3.5: wraps a user
  invocation in a root transaction, commits via Algorithm 4.3/4.4, and
  retries deadlock victims with exponential backoff.
* ``_execute`` — the compiler's half: lock acquisition before the
  method body, data transfer on global grants, pre-commit (lock and
  effect inheritance) after it, abort processing on exceptions.
* ``_drive`` — interprets generator method bodies, turning each
  yielded :class:`InvocationRequest` into a child transaction (the 1:1
  method-invocation/transaction mapping of §3.3).

Families run sequentially at one site; concurrency comes from multiple
root transactions across (and within) nodes, exactly the throughput
model of §2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.prediction import AccessPrediction, predict
from repro.faults.injector import NULL_INJECTOR
from repro.faults.wal import NULL_WAL
from repro.gdo.entry import LockMode
from repro.memory.shadow import ShadowLog
from repro.memory.undo import UndoLog
from repro.objects.proxy import InstrumentedSelf
from repro.objects.registry import ObjectHandle
from repro.obs.tracer import NULL_TRACER
from repro.runtime.context import InvocationRequest, TxnContext
from repro.txn.semantic import IncrementMerger
from repro.txn.transaction import Transaction, TxnStats
from repro.util.backoff import backoff_delay
from repro.util.errors import (
    ConfigurationError,
    DeadlockError,
    LockTimeoutError,
    NodeCrashError,
    ProtocolError,
    RecursiveInvocationError,
    TransactionAborted,
)
from repro.util.ids import NodeId, ObjectId


@dataclass(frozen=True)
class CommitRecord:
    """One committed root transaction, in commit order.

    ``args`` are stored in frozen form (handles replaced by object-id
    markers) so the record can be replayed on a fresh cluster by the
    serializability oracle (:mod:`repro.runtime.verify`).
    """

    time: float
    node: NodeId
    object_id: ObjectId
    method_name: str
    frozen_args: Tuple
    result: object
    label: str = ""
    root_serial: int = -1


@dataclass(frozen=True)
class AccessAudit:
    """Predicted vs actual attribute access for one invocation."""

    class_name: str
    method_name: str
    predicted_reads: frozenset
    predicted_writes: frozenset
    actual_reads: frozenset
    actual_writes: frozenset

    @property
    def conservative(self) -> bool:
        """Did the prediction cover everything that happened?"""
        return (
            self.actual_reads <= self.predicted_reads
            and self.actual_writes <= self.predicted_writes
        )

    @property
    def writes_conservative(self) -> bool:
        return self.actual_writes <= self.predicted_writes


@dataclass
class _LiveFamily:
    """One in-flight root attempt, registered for crash targeting.

    ``committing`` flips to True at the family's commit point (body
    finished, effects about to be installed): a node crash no longer
    interrupts such a family — its remaining release messages are
    merely delayed by the down window — which is what makes root
    commit atomic under fail-stop crashes.
    """

    txn: Transaction
    node: NodeId
    process: object = None
    committing: bool = False


@dataclass(frozen=True)
class _HandleRef:
    """Frozen stand-in for an ObjectHandle inside recorded args."""

    object_value: int


def freeze_args(args):
    """Recursively replace handles with id markers (for replay logs)."""
    if isinstance(args, ObjectHandle):
        return _HandleRef(args.object_id.value)
    if isinstance(args, tuple):
        return tuple(freeze_args(item) for item in args)
    if isinstance(args, list):
        return [freeze_args(item) for item in args]
    if isinstance(args, dict):
        return {key: freeze_args(value) for key, value in args.items()}
    return args


def _handles_in(args):
    """Every object id reachable from an argument structure."""
    found = []
    if isinstance(args, ObjectHandle):
        found.append(args.object_id)
    elif isinstance(args, (tuple, list)):
        for item in args:
            found.extend(_handles_in(item))
    elif isinstance(args, dict):
        for value in args.values():
            found.extend(_handles_in(value))
    return found


def thaw_args(frozen, resolve):
    """Inverse of :func:`freeze_args`; ``resolve(value) -> handle``."""
    if isinstance(frozen, _HandleRef):
        return resolve(frozen.object_value)
    if isinstance(frozen, tuple):
        return tuple(thaw_args(item, resolve) for item in frozen)
    if isinstance(frozen, list):
        return [thaw_args(item, resolve) for item in frozen]
    if isinstance(frozen, dict):
        return {key: thaw_args(value, resolve) for key, value in frozen.items()}
    return frozen


class Executor:
    """Executes root transactions against one cluster's substrates."""

    def __init__(self, env, config, alloc, stores, directory, lockmgr,
                 protocol, rng, tracer=None, injector=None, wal=None):
        self.env = env
        self.config = config
        self.alloc = alloc
        self.stores = stores
        self.directory = directory
        self.lockmgr = lockmgr
        self.protocol = protocol
        self.rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.wal = wal if wal is not None else NULL_WAL
        self._recovery_factory = (
            ShadowLog if config.recovery == "shadow" else UndoLog
        )
        # Semantic lock modes (DESIGN §15): the merger keeps blind
        # increments correct across commuting families; None keeps the
        # plain path byte-identical.
        self.merger = IncrementMerger(stores) if config.semantic_locks else None
        self.txn_stats = TxnStats()
        self.commit_log: List[CommitRecord] = []
        self.audit: List[AccessAudit] = []
        # root serial -> in-flight attempt; the CrashController walks
        # this to find the families a node crash must interrupt.
        self.live_families: Dict[int, _LiveFamily] = {}

    # ------------------------------------------------------------------
    # Root transactions
    # ------------------------------------------------------------------

    def run_root(self, node: NodeId, handle: ObjectHandle, method_name: str,
                 args: Tuple, label: str = "", process=None):
        """Simulation process for one user invocation (with retries).

        ``process`` is the :class:`~repro.sim.process.Process` driving
        this generator, when the caller has one: it lets a node crash
        interrupt the attempt mid-coroutine.  Retryable aborts
        (deadlock victim, lock-wait timeout) restart the loop with a
        fresh root serial after capped exponential backoff; a crash of
        the hosting node is terminal for the family.
        """
        attempts = 0
        while True:
            yield from self._await_node_up(node)
            txn = Transaction(self.alloc.next_root_txn(), node,
                              label=label or method_name,
                              recovery_factory=self._recovery_factory)
            family = _LiveFamily(txn=txn, node=node, process=process)
            self.live_families[txn.id.root] = family
            started = self.env.now
            token = self.tracer.txn_begin(txn)
            try:
                try:
                    if self.config.prefetch != "off" and (
                        handle.meta.schema.method_spec(method_name).may_invoke
                    ):
                        # §5.1 invocation analysis: methods proven to invoke
                        # nothing skip pre-acquisition entirely.
                        yield from self._prefetch(txn, handle, args)
                    result = yield from self._execute(txn, handle, method_name,
                                                      args)
                except DeadlockError:
                    yield from self._abort_root(txn)
                    self.tracer.txn_abort(token, txn, "deadlock")
                    self.txn_stats.aborts_deadlock += 1
                    attempts += 1
                    if attempts > self.config.max_retries:
                        raise TransactionAborted(txn.id,
                                                 "deadlock-retries-exhausted")
                    self.txn_stats.retries += 1
                    yield self.env.timeout(self._retry_backoff(attempts))
                    continue
                except LockTimeoutError:
                    yield from self._abort_root(txn)
                    self.tracer.txn_abort(token, txn, "lock-timeout")
                    self.txn_stats.aborts_lock_timeout += 1
                    attempts += 1
                    if attempts > self.config.max_retries:
                        raise TransactionAborted(
                            txn.id, "lock-timeout-retries-exhausted")
                    self.txn_stats.retries += 1
                    yield self.env.timeout(self._retry_backoff(attempts))
                    continue
                except NodeCrashError:
                    # The submitting client died with the node: roll back
                    # and surface the crash — no retry.
                    yield from self._abort_root(txn)
                    self.tracer.txn_abort(token, txn, "node-crash")
                    self.txn_stats.aborts_crash += 1
                    raise
                except RecursiveInvocationError:
                    yield from self._abort_root(txn)
                    self.tracer.txn_abort(token, txn, "recursive")
                    self.txn_stats.aborts_recursive += 1
                    raise
                except ProtocolError:
                    raise  # internal invariant violation: never mask as an abort
                except TransactionAborted:
                    yield from self._abort_root(txn)
                    self.tracer.txn_abort(token, txn, "user")
                    self.txn_stats.aborts_user += 1
                    raise
                except Exception:
                    yield from self._abort_root(txn)
                    self.tracer.txn_abort(token, txn, "exception")
                    self.txn_stats.aborts_user += 1
                    raise
                family.committing = True
                yield from self._flush_delay(txn)
                yield from self._commit_root(txn)
            finally:
                self.live_families.pop(txn.id.root, None)
            self.txn_stats.commits += 1
            latency = self.env.now - started
            self.tracer.txn_commit(token, txn, latency)
            self.txn_stats.root_latencies.append(latency)
            self.commit_log.append(
                CommitRecord(
                    time=self.env.now, node=node, object_id=handle.object_id,
                    method_name=method_name, frozen_args=freeze_args(tuple(args)),
                    result=freeze_args(result), label=label,
                    root_serial=txn.id.serial,
                )
            )
            return result

    def _retry_backoff(self, attempts: int) -> float:
        """Capped exponential backoff with seeded jitter (same stream
        and formula for every retryable abort cause) — the unified
        curve of :func:`repro.util.backoff.backoff_delay`, shared with
        the network retransmission timers and the failover reroute."""
        return backoff_delay(self.config.retry_backoff_s, attempts,
                             rng=self.rng)

    def _await_node_up(self, node: NodeId):
        """Hold off while ``node`` is inside a crash window.

        New root attempts cannot start on a down node; with no fault
        plan (or no crash covering now) this yields nothing, keeping
        the fault-free event schedule untouched.
        """
        while True:
            until = self.injector.down_until(node, self.env.now)
            if until <= self.env.now:
                return
            yield self.env.timeout(until - self.env.now)

    def _commit_root(self, root: Transaction):
        """Algorithm 4.3 (root commits) + 4.4, then protocol commit hook."""
        store = self.stores[root.node]
        resident = {
            object_id: store.resident_pages(object_id)
            for object_id in root.lock_objects
            if store.has_object(object_id)
        }
        yield from self.lockmgr.root_commit_release(root, resident)
        if self.merger is not None:
            # Fold the family's tracked increments into the per-slot
            # ledger and write the merged sums into this (now owning)
            # store before any newly granted family can fetch from us.
            self.merger.on_root_commit(root)
        # The committing site now holds the newest version of every
        # page it dirtied: stamp the local tags with the post-commit
        # versions before anyone can fetch from us.
        for object_id, pages in root.dirty.items():
            entry = self.directory.entry(object_id)
            for page in pages:
                version = entry.latest_version(page)
                store.set_page_version(object_id, page, version)
                # Durable record: the committed version now owned here
                # survives a crash of this node (fail-stop with stable
                # storage) and is replayed at rejoin.
                self.wal.record_page(root.node.value, object_id, page,
                                     version)
        self.protocol.on_root_commit(root, dict(root.dirty), self._meta_of)
        root.mark_committed()
        self._finalize_prediction_accounting(root)

    def _abort_root(self, root: Transaction):
        """Root abort: UNDO from local logs, release with no dirty info."""
        root.undo.apply(self.stores[root.node])
        root.dirty.clear()
        if self.merger is not None:
            self.merger.on_abort(root)
        yield from self.lockmgr.root_abort_release(root)
        root.mark_aborted()

    def crash_rollback(self, root: Transaction) -> int:
        """Discard a crash-aborted family's uncommitted writes *now*.

        A node crash frees the family's directory entries at the crash
        instant (``crash_release``), but the family's own unwinding —
        which normally applies the undo logs frame by frame — is
        exception-driven and can stall on the down node's messaging
        until rejoin.  In that window another family could acquire the
        freed locks and read the doomed family's dirty slots straight
        out of the crashed node's store.  Volatile state dies with the
        node, so the whole family tree's logs are applied here, newest
        frame first; the stalled unwinding later re-applies only
        already-emptied logs.
        """
        store = self.stores[root.node]
        applied = 0

        def walk(txn: Transaction) -> None:
            nonlocal applied
            for child in reversed(txn.children):
                walk(child)
            applied += txn.undo.apply(store)
            txn.dirty.clear()
            if self.merger is not None:
                self.merger.on_abort(txn)

        walk(root)
        return applied

    def _prefetch(self, txn: Transaction, handle: ObjectHandle, args):
        """Optimistic pre-acquisition of predicted invocation targets.

        "We can also predict which other objects a given method may
        invoke methods on ... to permit optimistic pre-acquisition of
        locks in the GDO as well as pre-fetching of needed objects"
        (§5.1).  The conservative target prediction is every object
        handle reachable from the invocation's arguments; candidates
        are pre-acquired concurrently (hiding remote lock latency) and
        in sorted order for determinism.  Pre-acquisition never blocks,
        so it cannot introduce deadlocks — a busy lock is simply not
        prefetched.
        """
        candidates = sorted(
            object_id
            for object_id in _handles_in(args)
            if object_id != handle.object_id
        )
        if not candidates:
            return
        fetch_pages = self.config.prefetch == "locks+pages"
        if fetch_pages and self.config.batch_transfers:
            yield from self._prefetch_batched(txn, candidates)
            return
        processes = [
            self.env.process(
                self._prefetch_one(txn, object_id, fetch_pages),
                name=f"prefetch:{object_id!r}",
            )
            for object_id in candidates
        ]
        yield self.env.all_of(processes)

    def _prefetch_batched(self, txn: Transaction, candidates):
        """Page-fetching prefetch with per-owner request coalescing.

        Phase 1 pre-acquires the candidates' locks concurrently (as the
        unbatched path does); phase 2 funnels every granted object
        through one :meth:`ProtocolSuite.acquire_transfer_many` call,
        so pages of different objects living at a common owner ride a
        single batched ``PAGE_REQUEST``/``PAGE_DATA`` pair.
        """
        processes = [
            self.env.process(
                self._prefetch_lock(txn, object_id),
                name=f"prefetch:{object_id!r}",
            )
            for object_id in candidates
        ]
        grants = yield self.env.all_of(processes)
        requests = []
        for grant in grants:
            if grant is None:
                continue
            object_id, snapshot = grant
            meta = self._meta_of(object_id)
            prediction = AccessPrediction(
                read_pages=meta.layout.all_pages(), write_pages=frozenset()
            )
            requests.append((meta, snapshot, prediction))
        if not requests:
            return
        outcomes = yield from self.protocol.acquire_transfer_many(
            txn, requests
        )
        root = txn.root
        for object_id, outcome in outcomes.items():
            root.transfer_log.setdefault(object_id, set()).update(
                outcome.shipped
            )

    def _prefetch_lock(self, txn: Transaction, object_id: ObjectId):
        """Lock half of a batched prefetch: non-blocking pre-acquisition,
        returning ``(object id, page-map snapshot)`` on a grant."""
        from repro.gdo.entry import LockMode as _LockMode

        snapshot = yield from self.lockmgr.try_prefetch(
            txn, object_id, _LockMode.WRITE
        )
        if snapshot is None:
            return None
        return object_id, snapshot

    def _prefetch_one(self, txn: Transaction, object_id: ObjectId,
                      fetch_pages: bool):
        from repro.gdo.entry import LockMode as _LockMode

        snapshot = yield from self.lockmgr.try_prefetch(
            txn, object_id, _LockMode.WRITE
        )
        if snapshot is None:
            return
        meta = self._meta_of(object_id)
        if not fetch_pages:
            # Lock-only prefetch: remember the page map; the protocol's
            # data transfer runs at the object's first real use, with
            # the actual method's prediction.
            self.stores[txn.node].register_object(object_id, meta.layout)
            txn.root.prefetch_maps[object_id] = snapshot
            return
        prediction = AccessPrediction(
            read_pages=meta.layout.all_pages(), write_pages=frozenset()
        )
        outcome = yield from self.protocol.for_meta(meta).acquire_transfer(
            txn, meta, snapshot, prediction
        )
        root = txn.root
        root.transfer_log.setdefault(object_id, set()).update(outcome.shipped)

    def _flush_delay(self, txn: Transaction):
        """Apply network delay deferred by synchronous demand fetches."""
        root = txn.root
        if root.pending_delay > 0:
            delay, root.pending_delay = root.pending_delay, 0.0
            yield self.env.timeout(delay)

    def _meta_of(self, object_id: ObjectId):
        return self._registry.meta(object_id)

    # The registry is attached by the Cluster right after construction
    # (it also owns object creation); kept as an attribute rather than a
    # constructor argument to avoid an init-order dance.
    _registry = None

    # ------------------------------------------------------------------
    # [Sub-]transaction execution
    # ------------------------------------------------------------------

    def _execute(self, txn: Transaction, handle: ObjectHandle,
                 method_name: str, args: Tuple):
        """Run one method invocation as transaction ``txn``."""
        meta = handle.meta
        spec = meta.schema.method_spec(method_name)
        if not txn.is_root:
            txn.label = method_name
        token = None if txn.is_root else self.tracer.txn_begin(txn)
        prediction = predict(spec.access, meta.layout)
        mode = LockMode.WRITE if spec.is_update else LockMode.READ
        increments = frozenset()
        if self.config.semantic_locks:
            mode = self.lockmgr.semantic_mode_for(
                meta.schema.name, method_name, mode
            )
            if getattr(mode, "tag", None) is not None:
                increments = mode.table.methods[method_name].increment_attrs
        try:
            snapshot = yield from self.lockmgr.acquire(txn, meta.object_id, mode)
            if snapshot is None:
                # A lock-only prefetch may have deferred this object's
                # data transfer to its first real use — now.
                snapshot = txn.root.prefetch_maps.pop(meta.object_id, None)
            if snapshot is not None:
                outcome = yield from self.protocol.for_meta(meta).acquire_transfer(
                    txn, meta, snapshot, prediction
                )
                root = txn.root
                root.transfer_log.setdefault(meta.object_id, set()).update(
                    outcome.shipped
                )
            ctx = TxnContext(self, txn, meta, spec,
                             allow_invoke=spec.is_generator,
                             merger=self.merger, increments=increments)
            proxy = InstrumentedSelf(ctx, meta)
            if spec.is_generator:
                body = spec.func(proxy, ctx, *args)
                result = yield from self._drive(body, txn)
            else:
                result = spec.func(proxy, ctx, *args)
            yield from self._flush_delay(txn)
            self._record_audit(ctx, spec, meta)
        except (ProtocolError, GeneratorExit):
            raise
        except BaseException as exc:
            yield from self._abort_sub(txn)
            if not txn.is_root:
                reason = "deadlock" if isinstance(exc, DeadlockError) else "abort"
                self.tracer.txn_abort(token, txn, reason)
            raise
        if not txn.is_root:
            txn.precommit()
            if self.merger is not None:
                self.merger.on_sub_commit(txn)
            self.lockmgr.precommit_release(txn)
            self.txn_stats.sub_commits += 1
            self.tracer.txn_commit(token, txn)
        return result

    def _abort_sub(self, txn: Transaction):
        """Sub-transaction abort (Algorithm 4.3): local UNDO, then lock
        disposition.  Roots are handled by :meth:`_abort_root`."""
        if txn.is_root:
            return
        txn.undo.apply(self.stores[txn.node])
        txn.dirty.clear()
        if self.merger is not None:
            self.merger.on_abort(txn)
        yield from self.lockmgr.sub_abort_release(txn)
        txn.mark_aborted()
        self.txn_stats.sub_aborts += 1

    def _drive(self, body, txn: Transaction):
        """Interpret a generator method body, spawning children for
        yielded invocation requests."""
        send_value = None
        throw_exc: Optional[BaseException] = None
        while True:
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    item = body.throw(exc)
                else:
                    item = body.send(send_value)
            except StopIteration as stop:
                return stop.value
            send_value = None
            if not isinstance(item, InvocationRequest):
                body.close()
                raise ConfigurationError(
                    f"method body yielded {item!r}; methods may only yield "
                    f"ctx.invoke(...) requests"
                )
            child = Transaction(
                self.alloc.next_sub_txn(txn.id), txn.node, parent=txn,
                label=item.method_name,
                recovery_factory=self._recovery_factory,
            )
            try:
                send_value = yield from self._execute(
                    child, item.handle, item.method_name, item.args
                )
            except (DeadlockError, LockTimeoutError, NodeCrashError,
                    RecursiveInvocationError, ProtocolError):
                # Family-fatal: not visible to user code.
                body.close()
                raise
            except TransactionAborted as exc:
                # The child aborted; the parent may catch and retry
                # (§3.2: "permits attempted re-execution of the failing
                # sub-transaction").
                throw_exc = exc
            except Exception as exc:  # noqa: BLE001 - forwarded to user code
                throw_exc = exc
            yield from self._flush_delay(txn)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _record_audit(self, ctx: TxnContext, spec, meta) -> None:
        if not self.config.audit_accesses:
            return
        self.audit.append(
            AccessAudit(
                class_name=meta.schema.name,
                method_name=spec.name,
                predicted_reads=frozenset(spec.access.reads),
                predicted_writes=frozenset(spec.access.writes),
                actual_reads=frozenset(ctx.actual_reads),
                actual_writes=frozenset(ctx.actual_writes),
            )
        )

    def _finalize_prediction_accounting(self, root: Transaction) -> None:
        for object_id, shipped in root.transfer_log.items():
            stats = self.protocol.for_meta(self._meta_of(object_id)).prediction_stats
            touched = root.touch_pages.get(object_id, set())
            stats.over_predicted_pages += len(shipped - touched)
        for object_id, pages in root.touch_pages.items():
            stats = self.protocol.for_meta(self._meta_of(object_id)).prediction_stats
            stats.touched_pages += len(pages)
