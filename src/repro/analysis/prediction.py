"""Mapping analyzed attribute sets to predicted page sets.

This is LOTEC's key input: at global lock acquisition the acquiring
site asks "of the pages that are stale here, which will this method
actually need?" and transfers only those (§4.1).  The prediction must
be conservative for *writes* (a page that will be dirtied must be
current before the write) while read under-prediction is tolerable —
it is repaired by the demand-fetch path at some extra message cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.analysis.ast_analysis import ALL_ATTRIBUTES, AccessSets
from repro.memory.layout import ObjectLayout


@dataclass(frozen=True)
class AccessPrediction:
    """Predicted page footprint of one method on one layout."""

    read_pages: FrozenSet[int]
    write_pages: FrozenSet[int]

    @property
    def pages(self) -> FrozenSet[int]:
        """All pages the method is predicted to touch."""
        return self.read_pages | self.write_pages

    @property
    def is_update(self) -> bool:
        """True when the method may write (drives W vs R lock mode)."""
        return bool(self.write_pages)


def predict(access: AccessSets, layout: ObjectLayout) -> AccessPrediction:
    """Turn attribute access sets into page sets for one object layout."""
    if access.reads is ALL_ATTRIBUTES:
        read_pages = layout.all_pages()
    else:
        read_pages = layout.pages_for_attributes(access.reads)
    if access.writes is ALL_ATTRIBUTES:
        write_pages = layout.all_pages()
    else:
        write_pages = layout.pages_for_attributes(access.writes)
    return AccessPrediction(read_pages=read_pages, write_pages=write_pages)


@dataclass
class PredictionStats:
    """Run-time accounting of how good the predictions were.

    ``demand_fetches`` counts pages that had to be pulled on access
    because the prediction missed them (possible when explicit
    annotations narrow the analyzed sets); ``over_predicted_pages``
    counts transferred pages never actually touched — the waste LOTEC
    accepts to stay conservative.
    """

    predicted_pages: int = 0
    transferred_pages: int = 0
    touched_pages: int = 0
    demand_fetches: int = 0
    write_misses: int = 0
    over_predicted_pages: int = 0
    acquisitions: int = 0

    def merge(self, other: "PredictionStats") -> None:
        self.predicted_pages += other.predicted_pages
        self.transferred_pages += other.transferred_pages
        self.touched_pages += other.touched_pages
        self.demand_fetches += other.demand_fetches
        self.write_misses += other.write_misses
        self.over_predicted_pages += other.over_predicted_pages
        self.acquisitions += other.acquisitions

    @property
    def demand_fetch_rate(self) -> float:
        """Demand fetches per global acquisition."""
        if self.acquisitions == 0:
            return 0.0
        return self.demand_fetches / self.acquisitions

    @property
    def waste_rate(self) -> float:
        """Fraction of transferred pages that were never touched."""
        if self.transferred_pages == 0:
            return 0.0
        return self.over_predicted_pages / self.transferred_pages
