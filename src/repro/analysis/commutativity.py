"""Per-class method commutativity tables (ROADMAP item 3).

Following *Automating Fine Concurrency Control in Object-Oriented
Databases* (Malta & Martinez), commutativity of two method invocations
on the same object is decided from their compile-time access sets:

* two updates commute iff every attribute both write is a *blind
  increment* in both (``+=``/``-=`` only, never observed — see
  :mod:`repro.analysis.ast_analysis`) and all their other accesses are
  page-disjoint;
* a read/write pair commutes iff the reader's page set is disjoint
  from everything the writer touches (a reader of an incremented slot
  observes intermediate sums, so increment pages count as touched).

The decision is page-granular because locks protect page transfers:
two methods whose *attributes* differ but share a page still move the
same bytes, so they must not run concurrently unless the shared page
carries only blind increments on both sides.

Trust tiers — the conservative R/W fallback of footnote 4:

1. **Analyzed exactly, no overrides** (``access == analyzed`` and the
   AST analysis completed): full rules, including increments.
2. **Declared overrides** (``@method(reads=..., writes=...)`` narrowed
   the sets): the declaration is trusted for page-disjointness only;
   increment commutativity needs the body, which the override bypassed.
3. **Inconclusive analysis** (dynamic attribute access, unavailable
   source) with no overrides: the method gets **no** semantic mode and
   falls back to the plain R/W lattice.

Tables are deterministic: construction iterates methods in sorted name
order and the artifact form (:meth:`CommutativityTable.to_trace`) is
fully sorted, so repeated builds over the same schema are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.analysis.invocations import invocation_names

#: Trust tiers recorded per method (see module docstring).
TRUST_ANALYZED = "analyzed"
TRUST_DECLARED = "declared"
TRUST_FALLBACK = "fallback"


@dataclass(frozen=True)
class MethodSummary:
    """One method's commutativity-relevant footprint on its object."""

    name: str
    base: str  # "R" or "W" — the plain lattice the mode degrades to
    trust: str  # TRUST_ANALYZED / TRUST_DECLARED / TRUST_FALLBACK
    #: Pages the method observes (reads) or plainly writes; any overlap
    #: with another method's written pages is a conflict.
    observed_pages: FrozenSet[int]
    #: Pages written other than via blind increments.
    plain_write_pages: FrozenSet[int]
    #: Attributes updated only as blind increments (numeric scalars).
    increment_attrs: FrozenSet[str]
    increment_pages: FrozenSet[int]
    #: Sub-transaction invocations the method may make (artifact only).
    invokes: Tuple[str, ...] = ()

    @property
    def semantic(self) -> bool:
        """Eligible for a semantic lock mode (not the R/W fallback)."""
        return self.trust != TRUST_FALLBACK

    @property
    def written_pages(self) -> FrozenSet[int]:
        return self.plain_write_pages | self.increment_pages


def _pair_commutes(a: MethodSummary, b: MethodSummary) -> bool:
    if not (a.semantic and b.semantic):
        return False
    # Neither may observe (or plainly write) anything the other writes;
    # the only overlap this leaves is increment-page vs increment-page,
    # which merges commutatively.
    if a.observed_pages & b.written_pages:
        return False
    if b.observed_pages & a.written_pages:
        return False
    return True


class CommutativityTable:
    """Symmetric commutes-with relation over one class's methods."""

    def __init__(self, class_name: str,
                 methods: Dict[str, MethodSummary]) -> None:
        self.class_name = class_name
        self.methods = methods
        self._commutes: Dict[Tuple[str, str], bool] = {}
        names = sorted(methods)
        for left in names:
            for right in names:
                self._commutes[(left, right)] = _pair_commutes(
                    methods[left], methods[right]
                )

    def commutes(self, left: str, right: str) -> bool:
        """Do invocations of ``left`` and ``right`` commute?

        Unknown method names never commute (conservative)."""
        return self._commutes.get((left, right), False)

    def summary(self, name: str) -> MethodSummary:
        return self.methods[name]

    def semantic_methods(self) -> Tuple[str, ...]:
        """Methods eligible for a semantic mode, sorted."""
        return tuple(
            name for name in sorted(self.methods)
            if self.methods[name].semantic
        )

    def commuting_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """Sorted (left, right) pairs with left <= right that commute."""
        return tuple(
            (left, right)
            for (left, right), ok in sorted(self._commutes.items())
            if ok and left <= right
        )

    def to_trace(self) -> dict:
        """Serializable artifact for the ``lock.commtable`` trace event.

        The post-hoc checkers rebuild their conflict relation from
        exactly this payload, so it must carry everything they judge
        by: per-method base mode and eligibility, plus the honest
        commuting pairs."""
        return {
            "class": self.class_name,
            "methods": {
                name: {
                    "base": summary.base,
                    "semantic": summary.semantic,
                    "trust": summary.trust,
                    "increments": sorted(summary.increment_attrs),
                    "invokes": list(summary.invokes),
                }
                for name, summary in sorted(self.methods.items())
            },
            "commutes": [list(pair) for pair in self.commuting_pairs()],
        }

    def __repr__(self) -> str:
        pairs = len(self.commuting_pairs())
        return (f"<CommutativityTable {self.class_name} "
                f"{len(self.methods)} methods, {pairs} commuting pairs>")


def _increment_eligible(layout, attr: str) -> bool:
    """Blind increments merge only on scalar numeric attributes."""
    spec = layout.attribute(attr)
    if spec.is_array:
        return False
    default = spec.default
    return isinstance(default, (int, float)) and not isinstance(default, bool)


def build_commutativity(schema, layout,
                        allow_increments: bool = True) -> CommutativityTable:
    """Build the commutativity table for one class.

    ``allow_increments=False`` keeps page-disjointness commutativity
    but drops increment-based commutativity (used when the recovery
    mechanism is page-granular shadowing, which cannot roll back one
    family's increments without clobbering another's).
    """
    summaries: Dict[str, MethodSummary] = {}
    for name in sorted(schema.methods):
        spec = schema.method_spec(name)
        access, analyzed = spec.access, spec.analyzed
        base = "W" if spec.is_update else "R"
        declared = (access.reads != analyzed.reads
                    or access.writes != analyzed.writes)
        if declared:
            trust = TRUST_DECLARED
        elif analyzed.exact:
            trust = TRUST_ANALYZED
        else:
            trust = TRUST_FALLBACK
        increments: FrozenSet[str] = frozenset()
        if trust == TRUST_ANALYZED and allow_increments:
            increments = frozenset(
                attr for attr in analyzed.increments
                if attr in access.writes and _increment_eligible(layout, attr)
            )
        plain_writes = frozenset(access.writes) - increments
        observed = (frozenset(access.reads) - increments) | plain_writes
        summaries[name] = MethodSummary(
            name=name,
            base=base,
            trust=trust,
            observed_pages=frozenset(layout.pages_for_attributes(observed)),
            plain_write_pages=frozenset(
                layout.pages_for_attributes(plain_writes)
            ),
            increment_attrs=increments,
            increment_pages=frozenset(
                layout.pages_for_attributes(increments)
            ),
            invokes=invocation_names(spec.invoked_methods),
        )
    return CommutativityTable(schema.name, summaries)
