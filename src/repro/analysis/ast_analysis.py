"""Conservative attribute access analysis over method bodies.

The analysis answers, for one method: which attributes of ``self`` may
be read, and which may be written, on *any* control path?  Per the
paper's footnote 4, run-time values can alter control flow, so exact
prediction is impossible; the analysis therefore unions over all paths
(a branch only taken rarely still contributes its accesses).

Rules:

* ``self.x`` in load context        -> read of ``x``
* ``self.x = ...`` / ``del self.x`` -> write of ``x``
* ``self.x += ...``                 -> read and write of ``x``
* ``self.x[i]`` load / store        -> read / write of ``x`` (whole
  attribute: element indices are run-time values)

On top of the read/write sets the analysis classifies *blind
increments*: attributes accessed **only** through ``+=`` / ``-=`` on
``self.x`` itself (never loaded, stored, deleted, or subscripted
anywhere on any path, including transitively called helpers).  Such
updates commute with each other — the basis for the semantic lock
modes of :mod:`repro.analysis.commutativity`.  Any other access to the
attribute demotes it back to an ordinary read/write.
* ``self.m(...)`` where ``m`` is another method of the same class
  -> union of ``m``'s access sets (transitively, cycles handled)
* ``getattr(self, ...)`` / ``setattr(self, ...)`` / ``vars(self)`` or
  any other escape of bare ``self`` -> conservatively *all* attributes
  (read and, for setattr/escape, written)

If the source of a method cannot be obtained (e.g. a lambda built at
run time or a C callable), the analysis degrades to ALL_ATTRIBUTES on
both sets, which is always safe.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Set, Union


class _AllAttributes:
    """Sentinel meaning "every attribute of the class" (top element)."""

    _instance: Optional["_AllAttributes"] = None

    def __new__(cls) -> "_AllAttributes":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ALL_ATTRIBUTES"


ALL_ATTRIBUTES = _AllAttributes()

AttrSet = Union[FrozenSet[str], _AllAttributes]


def _union(a: AttrSet, b: AttrSet) -> AttrSet:
    if a is ALL_ATTRIBUTES or b is ALL_ATTRIBUTES:
        return ALL_ATTRIBUTES
    return frozenset(a) | frozenset(b)


@dataclass(frozen=True)
class AccessSets:
    """Result of analyzing one method: may-read and may-write sets.

    ``increments`` is the subset of ``writes`` accessed *only* as blind
    ``+=``/``-=`` increments (always concrete — never the ALL
    sentinel).  ``exact`` records whether the analysis ran to
    completion; unlike the structural :attr:`is_exact` it is sticky
    through :meth:`resolve` (which erases the ALL sentinel), so the
    commutativity trust tiers can still see that a method degraded.
    """

    reads: AttrSet
    writes: AttrSet
    increments: FrozenSet[str] = frozenset()
    exact: bool = True

    @property
    def accessed(self) -> AttrSet:
        """Everything the method may touch (reads union writes)."""
        return _union(self.reads, self.writes)

    @property
    def is_exact(self) -> bool:
        """False while a set still carries the ALL sentinel."""
        return (self.reads is not ALL_ATTRIBUTES
                and self.writes is not ALL_ATTRIBUTES)

    def resolve(self, all_names) -> "AccessSets":
        """Replace the ALL sentinel with the concrete attribute set."""
        names = frozenset(all_names)
        reads = names if self.reads is ALL_ATTRIBUTES else frozenset(self.reads) & names
        writes = names if self.writes is ALL_ATTRIBUTES else frozenset(self.writes) & names
        return AccessSets(reads=reads, writes=writes,
                          increments=frozenset(self.increments) & names,
                          exact=self.exact and self.is_exact)


_ESCAPE_READ_BUILTINS = {"getattr", "vars", "hasattr"}
_ESCAPE_WRITE_BUILTINS = {"setattr", "delattr"}


class _SelfAccessVisitor(ast.NodeVisitor):
    """Collects attribute accesses on the first parameter (``self``)."""

    def __init__(self, self_name: str):
        self.self_name = self_name
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.called_methods: Set[str] = set()
        self.reads_all = False
        self.writes_all = False
        # Blind-increment classification: attrs updated via +=/-= on
        # ``self.attr`` itself, and attrs *observed* any other way.
        # increments = candidates - observed (composed transitively in
        # analyze_method, so a helper's plain read demotes a caller's
        # increment too).
        self.increment_candidates: Set[str] = set()
        self.observed: Set[str] = set()

    # -- attribute access ----------------------------------------------------

    def _is_self(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == self.self_name

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_self(node.value):
            if isinstance(node.ctx, ast.Load):
                self.reads.add(node.attr)
                self.observed.add(node.attr)
            elif isinstance(node.ctx, (ast.Store, ast.Del)):
                self.writes.add(node.attr)
                self.observed.add(node.attr)
        else:
            self.visit(node.value)
        # Never descend into node.value when it is bare self (handled).

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # self.x += v reads and writes x; the Store ctx on the target
        # would otherwise hide the read.
        target = node.target
        if isinstance(target, ast.Attribute) and self._is_self(target.value):
            self.reads.add(target.attr)
            self.writes.add(target.attr)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                # The read feeds only the delta: a blind increment,
                # unless some other access observes the attribute.
                self.increment_candidates.add(target.attr)
            else:
                self.observed.add(target.attr)
        elif (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and self._is_self(target.value.value)
        ):
            self.reads.add(target.value.attr)
            self.writes.add(target.value.attr)
            # Element-level increments are not tracked (indices are
            # run-time values): the whole attribute counts as observed.
            self.observed.add(target.value.attr)
            self.visit(target.slice)
        else:
            self.visit(target)
        self.visit(node.value)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # self.x[i] — attribute-level conservatism: the whole of x.
        if isinstance(node.value, ast.Attribute) and self._is_self(node.value.value):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                # Element store also reads the container reference.
                self.reads.add(node.value.attr)
                self.writes.add(node.value.attr)
            else:
                self.reads.add(node.value.attr)
            self.observed.add(node.value.attr)
            self.visit(node.slice)
        else:
            self.generic_visit(node)

    # -- calls ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ESCAPE_READ_BUILTINS and any(
                self._is_self(arg) for arg in node.args
            ):
                self.reads_all = True
            if func.id in _ESCAPE_WRITE_BUILTINS and any(
                self._is_self(arg) for arg in node.args
            ):
                self.reads_all = True
                self.writes_all = True
        if isinstance(func, ast.Attribute) and self._is_self(func.value):
            # self.m(...) — resolved against the class's methods later;
            # if m turns out to be a data attribute, the name is also in
            # reads which is the right conservative answer.
            self.called_methods.add(func.attr)
            self.reads.add(func.attr)
            self.observed.add(func.attr)
            for arg in node.args:
                self.visit(arg)
            for keyword in node.keywords:
                self.visit(keyword.value)
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # Bare `self` escaping into an expression (passed to a function,
        # stored, returned): anything could happen to it.
        if node.id == self.self_name and isinstance(node.ctx, ast.Load):
            self.reads_all = True
            self.writes_all = True


@dataclass
class _RawAnalysis:
    reads: AttrSet
    writes: AttrSet
    called_methods: FrozenSet[str] = field(default_factory=frozenset)
    # Blind-increment classification, composed across helper calls:
    # increments = increment_candidates - observed.  ``observed`` is
    # ALL_ATTRIBUTES whenever the analysis gave up, which correctly
    # empties the increment set.
    increment_candidates: FrozenSet[str] = frozenset()
    observed: AttrSet = frozenset()


def _analyze_single(func: Callable) -> _RawAnalysis:
    """Analyze one function body, without resolving method calls."""
    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return _RawAnalysis(reads=ALL_ATTRIBUTES, writes=ALL_ATTRIBUTES,
                            observed=ALL_ATTRIBUTES)
    func_defs = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if not func_defs:
        return _RawAnalysis(reads=ALL_ATTRIBUTES, writes=ALL_ATTRIBUTES,
                            observed=ALL_ATTRIBUTES)
    func_def = func_defs[0]
    params = func_def.args.args
    if not params:
        return _RawAnalysis(reads=frozenset(), writes=frozenset())
    visitor = _SelfAccessVisitor(self_name=params[0].arg)
    for statement in func_def.body:
        visitor.visit(statement)
    reads: AttrSet = ALL_ATTRIBUTES if visitor.reads_all else frozenset(visitor.reads)
    writes: AttrSet = ALL_ATTRIBUTES if visitor.writes_all else frozenset(visitor.writes)
    observed: AttrSet = (
        ALL_ATTRIBUTES if (visitor.reads_all or visitor.writes_all)
        else frozenset(visitor.observed)
    )
    return _RawAnalysis(
        reads=reads, writes=writes,
        called_methods=frozenset(visitor.called_methods),
        increment_candidates=frozenset(visitor.increment_candidates),
        observed=observed,
    )


def analyze_method(func: Callable,
                   class_methods: Optional[Dict[str, Callable]] = None) -> AccessSets:
    """Analyze a method, transitively including same-class helper calls.

    ``class_methods`` maps method names to callables of the same class;
    ``self.m(...)`` unions ``m``'s sets.  Call cycles are handled with a
    standard visited-set fixpoint (each method analyzed once).
    """
    class_methods = class_methods or {}
    memo: Dict[int, _RawAnalysis] = {}

    def raw(f: Callable) -> _RawAnalysis:
        key = id(f)
        if key not in memo:
            memo[key] = _analyze_single(f)
        return memo[key]

    reads: AttrSet = frozenset()
    writes: AttrSet = frozenset()
    candidates: FrozenSet[str] = frozenset()
    observed: AttrSet = frozenset()
    pending = [func]
    visited = set()
    while pending:
        current = pending.pop()
        if id(current) in visited:
            continue
        visited.add(id(current))
        result = raw(current)
        reads = _union(reads, result.reads)
        writes = _union(writes, result.writes)
        candidates = candidates | result.increment_candidates
        observed = _union(observed, result.observed)
        for name in result.called_methods:
            callee = class_methods.get(name)
            if callee is not None:
                pending.append(callee)
            # Unknown self.<name>(...) targets already contributed
            # `name` to the read set; a data attribute called as a
            # function is a user bug, not an analysis hole.
    if observed is ALL_ATTRIBUTES:
        increments: FrozenSet[str] = frozenset()
    else:
        increments = candidates - frozenset(observed)
    exact = reads is not ALL_ATTRIBUTES and writes is not ALL_ATTRIBUTES
    return AccessSets(reads=reads, writes=writes, increments=increments,
                      exact=exact)
