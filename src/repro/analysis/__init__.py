"""Compile-time access analysis and page prediction.

Section 4.1 lists two compiler requirements for LOTEC: (1) detect,
conservatively, which attributes each method may access ("attribute
access analysis"), and (2) map attributes to the pages they occupy in
the object's memory image.  :mod:`repro.analysis.ast_analysis` is (1)
— a static walk over the Python AST of a method body; page mapping (2)
is :meth:`repro.memory.ObjectLayout.pages_for_attributes`, combined in
:mod:`repro.analysis.prediction`.

Explicit ``reads=`` / ``writes=`` annotations on the ``@method``
decorator override the analysis, mirroring the paper's note that
analysis results "can also be improved by the use of partial
evaluation techniques" — annotations model a sharper (or, if the user
lies, an unsound) analysis, which is exactly what the demand-fetch path
and the prediction-accuracy ablation need.
"""

from repro.analysis.ast_analysis import ALL_ATTRIBUTES, AccessSets, analyze_method
from repro.analysis.commutativity import (
    CommutativityTable,
    MethodSummary,
    build_commutativity,
)
from repro.analysis.invocations import (
    UNKNOWN_INVOCATIONS,
    analyze_invocations,
    invocation_names,
    may_invoke,
)
from repro.analysis.prediction import AccessPrediction, PredictionStats, predict

__all__ = [
    "ALL_ATTRIBUTES",
    "AccessSets",
    "analyze_method",
    "AccessPrediction",
    "CommutativityTable",
    "MethodSummary",
    "build_commutativity",
    "UNKNOWN_INVOCATIONS",
    "analyze_invocations",
    "invocation_names",
    "may_invoke",
    "PredictionStats",
    "predict",
]
