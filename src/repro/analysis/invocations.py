"""Static analysis of sub-transaction invocations.

Section 5.1: "Just as we can conservatively predict which parts of an
object a method may access, we can also predict which other objects a
given method may invoke methods on.  This information can then be used
to permit optimistic pre-acquisition of locks in the GDO as well as
pre-fetching of needed objects."

The *which objects* half is a run-time question (targets are handles
flowing through arguments); the *whether and what* half is static:
this module finds every ``ctx.invoke(target, "name", ...)`` in a
method body and reports the set of literal method names invoked — or
:data:`UNKNOWN_INVOCATIONS` when a name is computed at run time.  A
method proven to invoke nothing lets the prefetcher skip its (pure
overhead) pre-acquisition round trips entirely.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, FrozenSet, Union


class _UnknownInvocations:
    """Sentinel: the method may invoke, but names are not static."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNKNOWN_INVOCATIONS"


UNKNOWN_INVOCATIONS = _UnknownInvocations()

InvocationSet = Union[FrozenSet[str], _UnknownInvocations]


class _InvokeVisitor(ast.NodeVisitor):
    def __init__(self, ctx_name: str):
        self.ctx_name = ctx_name
        self.names = set()
        self.unknown = False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "invoke"
            and isinstance(func.value, ast.Name)
            and func.value.id == self.ctx_name
        ):
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                    and isinstance(node.args[1].value, str):
                self.names.add(node.args[1].value)
            else:
                self.unknown = True
        self.generic_visit(node)


def analyze_invocations(func: Callable) -> InvocationSet:
    """Method names this function may invoke as sub-transactions.

    Returns a frozenset of literal names, or UNKNOWN_INVOCATIONS when
    the source is unavailable or an invocation's method name is
    computed.  Non-generator functions cannot suspend and therefore
    cannot invoke: they always return the empty set.
    """
    if not inspect.isgeneratorfunction(func):
        return frozenset()
    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return UNKNOWN_INVOCATIONS
    func_defs = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if not func_defs:
        return UNKNOWN_INVOCATIONS
    params = func_defs[0].args.args
    if len(params) < 2:
        return frozenset()
    visitor = _InvokeVisitor(ctx_name=params[1].arg)
    for statement in func_defs[0].body:
        visitor.visit(statement)
    if visitor.unknown:
        return UNKNOWN_INVOCATIONS
    return frozenset(visitor.names)


def may_invoke(invocations: InvocationSet) -> bool:
    """True unless the analysis proved the method invokes nothing."""
    if invocations is UNKNOWN_INVOCATIONS:
        return True
    return bool(invocations)


def invocation_names(invocations: InvocationSet) -> tuple:
    """Stable, serializable rendering of an invocation set.

    Used by the commutativity-table artifact: a sorted name tuple, or
    ``("?",)`` when the set is :data:`UNKNOWN_INVOCATIONS` or was never
    analyzed (the table must still record that the method *may*
    invoke)."""
    if invocations is None or invocations is UNKNOWN_INVOCATIONS:
        return ("?",)
    return tuple(sorted(invocations))
