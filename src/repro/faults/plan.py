"""Fault plans: declarative, validated descriptions of what to break.

A :class:`FaultPlan` is pure data — it carries no randomness and no
clock.  The :class:`~repro.faults.injector.FaultInjector` combines a
plan with a seeded RNG stream and the simulation clock to produce the
actual fault schedule, which makes the schedule a deterministic
function of ``(cluster seed, plan)``.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.util.errors import ConfigurationError

__all__ = [
    "CrashEvent", "PartitionEvent", "SlowNodeEvent", "FaultPlan",
    "FAULT_PRESETS",
]


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled fail-stop window for a single node.

    The node stops sending and receiving at ``at_s`` and comes back at
    ``at_s + down_for_s`` — or at ``recover_at_s`` when given, which
    expresses the window as an absolute rejoin instant instead of a
    duration (exactly one of the two forms must be used).  Storage is
    stable across the window (the model is fail-stop with durable
    pages, not media loss): committed page versions owned by the node
    survive, but every non-committing transaction family running there
    is aborted and its directory state reclaimed.  On rejoin the node
    replays its durable record and re-integrates
    (:mod:`repro.faults.recovery`).
    """

    node_index: int
    at_s: float
    down_for_s: float = 0.0
    recover_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_index < 0:
            raise ConfigurationError(
                f"crash node_index must be >= 0, got {self.node_index}")
        if self.at_s < 0:
            raise ConfigurationError(
                f"crash at_s must be >= 0, got {self.at_s}")
        if self.recover_at_s is None:
            if not self.down_for_s > 0:
                raise ConfigurationError(
                    f"crash down_for_s must be > 0, got {self.down_for_s}")
        else:
            if self.down_for_s:
                raise ConfigurationError(
                    "give either down_for_s or recover_at_s, not both")
            if not self.recover_at_s > self.at_s:
                raise ConfigurationError(
                    f"crash recover_at_s must be > at_s "
                    f"({self.at_s}), got {self.recover_at_s}")

    @property
    def up_at_s(self) -> float:
        if self.recover_at_s is not None:
            return self.recover_at_s
        return self.at_s + self.down_for_s


@dataclass(frozen=True)
class PartitionEvent:
    """One node-set bipartition window.

    From ``at_s`` until ``at_s + heal_after_s`` the cluster is split
    into ``group_a`` and everyone else: messages crossing the cut are
    lost (and redelivered by the retransmission loop after the heal),
    while traffic within either side flows normally.
    """

    group_a: Tuple[int, ...]
    at_s: float
    heal_after_s: float

    def __post_init__(self) -> None:
        if not self.group_a:
            raise ConfigurationError("partition group_a must be non-empty")
        if len(set(self.group_a)) != len(self.group_a):
            raise ConfigurationError(
                f"partition group_a has duplicates: {self.group_a}")
        if any(index < 0 for index in self.group_a):
            raise ConfigurationError(
                f"partition node indexes must be >= 0, got {self.group_a}")
        if self.at_s < 0:
            raise ConfigurationError(
                f"partition at_s must be >= 0, got {self.at_s}")
        if not self.heal_after_s > 0:
            raise ConfigurationError(
                f"partition heal_after_s must be > 0, got "
                f"{self.heal_after_s}")

    @property
    def heal_at_s(self) -> float:
        return self.at_s + self.heal_after_s


@dataclass(frozen=True)
class SlowNodeEvent:
    """One slow/overloaded-node window.

    Every message to or from the node during the window pays an extra
    fixed ``per_message_s`` of service latency — the node is degraded,
    not dead, so nothing is dropped and no recovery action fires.
    """

    node_index: int
    at_s: float
    for_s: float
    per_message_s: float

    def __post_init__(self) -> None:
        if self.node_index < 0:
            raise ConfigurationError(
                f"slow-node node_index must be >= 0, got {self.node_index}")
        if self.at_s < 0:
            raise ConfigurationError(
                f"slow-node at_s must be >= 0, got {self.at_s}")
        if not self.for_s > 0:
            raise ConfigurationError(
                f"slow-node for_s must be > 0, got {self.for_s}")
        if not self.per_message_s > 0:
            raise ConfigurationError(
                f"slow-node per_message_s must be > 0, got "
                f"{self.per_message_s}")

    @property
    def until_s(self) -> float:
        return self.at_s + self.for_s


@dataclass(frozen=True)
class FaultPlan:
    """What faults to inject, and the recovery parameters that bound them.

    Probabilistic message faults are evaluated per remote message in a
    fixed order (drop, duplicate, jitter) from a dedicated RNG
    sub-stream.  Drops are *fair-loss*: once a message has been
    retransmitted ``retransmit_limit`` times, further probabilistic
    drops are suppressed so delivery — and therefore termination — is
    guaranteed.  ``lock_wait_timeout_s == 0`` disables lock-wait
    timeouts entirely.  ``failover_detect_s > 0`` arms GDO home
    failover: a crashed home's directory entries are re-homed to a
    deterministic successor once it has been down for that long, and
    reclaimed when it rejoins.
    """

    name: str = "custom"
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_jitter_s: float = 0.0
    retransmit_timeout_s: float = 0.002
    retransmit_limit: int = 8
    lock_wait_timeout_s: float = 0.0
    failover_detect_s: float = 0.0
    crashes: Tuple[CrashEvent, ...] = field(default_factory=tuple)
    partitions: Tuple[PartitionEvent, ...] = field(default_factory=tuple)
    slow_nodes: Tuple[SlowNodeEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for label, probability in (
            ("drop_probability", self.drop_probability),
            ("duplicate_probability", self.duplicate_probability),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"{label} must be in [0, 1], got {probability}")
        if self.delay_jitter_s < 0:
            raise ConfigurationError(
                f"delay_jitter_s must be >= 0, got {self.delay_jitter_s}")
        if not self.retransmit_timeout_s > 0:
            raise ConfigurationError(
                "retransmit_timeout_s must be > 0, got "
                f"{self.retransmit_timeout_s}")
        if self.retransmit_limit < 1:
            raise ConfigurationError(
                f"retransmit_limit must be >= 1, got {self.retransmit_limit}")
        if self.lock_wait_timeout_s < 0:
            raise ConfigurationError(
                "lock_wait_timeout_s must be >= 0, got "
                f"{self.lock_wait_timeout_s}")
        if self.failover_detect_s < 0:
            raise ConfigurationError(
                "failover_detect_s must be >= 0, got "
                f"{self.failover_detect_s}")
        for crash in self.crashes:
            if not isinstance(crash, CrashEvent):
                raise ConfigurationError(
                    f"crashes must hold CrashEvent instances, got {crash!r}")
        for cut in self.partitions:
            if not isinstance(cut, PartitionEvent):
                raise ConfigurationError(
                    f"partitions must hold PartitionEvent instances, "
                    f"got {cut!r}")
        for slow in self.slow_nodes:
            if not isinstance(slow, SlowNodeEvent):
                raise ConfigurationError(
                    f"slow_nodes must hold SlowNodeEvent instances, "
                    f"got {slow!r}")

    @property
    def max_crash_node_index(self) -> int:
        """Largest node index named by a crash, or -1 with no crashes."""
        if not self.crashes:
            return -1
        return max(crash.node_index for crash in self.crashes)

    @property
    def max_fault_node_index(self) -> int:
        """Largest node index named by any fault event, or -1."""
        indexes = [self.max_crash_node_index]
        indexes.extend(index for cut in self.partitions
                       for index in cut.group_a)
        indexes.extend(slow.node_index for slow in self.slow_nodes)
        return max(indexes)

    @property
    def has_message_faults(self) -> bool:
        return (self.drop_probability > 0
                or self.duplicate_probability > 0
                or self.delay_jitter_s > 0)


#: Named presets exercised by ``repro chaos`` and the chaos test suite.
#: Collectively they cover loss >= 10%, duplication, delay jitter,
#: node crash/recovery, GDO home failover, network bipartitions, and a
#: slow node; "chaos" combines the message faults with a crash.
FAULT_PRESETS: Dict[str, FaultPlan] = {
    "lossy-net": FaultPlan(
        name="lossy-net",
        drop_probability=0.12,
        delay_jitter_s=0.0005,
    ),
    "dup-delay": FaultPlan(
        name="dup-delay",
        duplicate_probability=0.15,
        delay_jitter_s=0.002,
    ),
    "lock-timeout": FaultPlan(
        name="lock-timeout",
        lock_wait_timeout_s=0.002,
    ),
    "crash-recover": FaultPlan(
        name="crash-recover",
        crashes=(CrashEvent(node_index=1, at_s=0.004, down_for_s=0.01),),
    ),
    "crash-failover": FaultPlan(
        name="crash-failover",
        failover_detect_s=0.003,
        crashes=(CrashEvent(node_index=1, at_s=0.004,
                            recover_at_s=0.016),),
    ),
    "partition": FaultPlan(
        name="partition",
        partitions=(PartitionEvent(group_a=(0, 1), at_s=0.004,
                                   heal_after_s=0.008),),
    ),
    "slow-node": FaultPlan(
        name="slow-node",
        slow_nodes=(SlowNodeEvent(node_index=2, at_s=0.002, for_s=0.01,
                                  per_message_s=0.001),),
    ),
    # The recovery gauntlet: two staggered crash/rejoin cycles (so two
    # nodes replay their durable records against live state) followed
    # by a bipartition that heals — the canonical input for the
    # rejoin-reconciliation mutation tests and the CI recovery smoke.
    "crash-partition": FaultPlan(
        name="crash-partition",
        failover_detect_s=0.003,
        crashes=(CrashEvent(node_index=1, at_s=0.01, recover_at_s=0.04),
                 CrashEvent(node_index=2, at_s=0.05, recover_at_s=0.09)),
        partitions=(PartitionEvent(group_a=(0, 1), at_s=0.1,
                                   heal_after_s=0.008),),
    ),
    "chaos": FaultPlan(
        name="chaos",
        drop_probability=0.10,
        duplicate_probability=0.05,
        delay_jitter_s=0.001,
        lock_wait_timeout_s=0.01,
        crashes=(CrashEvent(node_index=1, at_s=0.004, down_for_s=0.008),),
    ),
}
