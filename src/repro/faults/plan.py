"""Fault plans: declarative, validated descriptions of what to break.

A :class:`FaultPlan` is pure data — it carries no randomness and no
clock.  The :class:`~repro.faults.injector.FaultInjector` combines a
plan with a seeded RNG stream and the simulation clock to produce the
actual fault schedule, which makes the schedule a deterministic
function of ``(cluster seed, plan)``.
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.util.errors import ConfigurationError

__all__ = ["CrashEvent", "FaultPlan", "FAULT_PRESETS"]


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled fail-stop window for a single node.

    The node stops sending and receiving at ``at_s`` and comes back at
    ``at_s + down_for_s``.  Storage is stable across the window (the
    model is fail-stop with durable pages, not media loss): committed
    page versions owned by the node survive, but every non-committing
    transaction family running there is aborted and its directory
    state reclaimed.
    """

    node_index: int
    at_s: float
    down_for_s: float

    def __post_init__(self) -> None:
        if self.node_index < 0:
            raise ConfigurationError(
                f"crash node_index must be >= 0, got {self.node_index}")
        if self.at_s < 0:
            raise ConfigurationError(
                f"crash at_s must be >= 0, got {self.at_s}")
        if not self.down_for_s > 0:
            raise ConfigurationError(
                f"crash down_for_s must be > 0, got {self.down_for_s}")

    @property
    def up_at_s(self) -> float:
        return self.at_s + self.down_for_s


@dataclass(frozen=True)
class FaultPlan:
    """What faults to inject, and the recovery parameters that bound them.

    Probabilistic message faults are evaluated per remote message in a
    fixed order (drop, duplicate, jitter) from a dedicated RNG
    sub-stream.  Drops are *fair-loss*: once a message has been
    retransmitted ``retransmit_limit`` times, further probabilistic
    drops are suppressed so delivery — and therefore termination — is
    guaranteed.  ``lock_wait_timeout_s == 0`` disables lock-wait
    timeouts entirely.
    """

    name: str = "custom"
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_jitter_s: float = 0.0
    retransmit_timeout_s: float = 0.002
    retransmit_limit: int = 8
    lock_wait_timeout_s: float = 0.0
    crashes: Tuple[CrashEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for label, probability in (
            ("drop_probability", self.drop_probability),
            ("duplicate_probability", self.duplicate_probability),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"{label} must be in [0, 1], got {probability}")
        if self.delay_jitter_s < 0:
            raise ConfigurationError(
                f"delay_jitter_s must be >= 0, got {self.delay_jitter_s}")
        if not self.retransmit_timeout_s > 0:
            raise ConfigurationError(
                "retransmit_timeout_s must be > 0, got "
                f"{self.retransmit_timeout_s}")
        if self.retransmit_limit < 1:
            raise ConfigurationError(
                f"retransmit_limit must be >= 1, got {self.retransmit_limit}")
        if self.lock_wait_timeout_s < 0:
            raise ConfigurationError(
                "lock_wait_timeout_s must be >= 0, got "
                f"{self.lock_wait_timeout_s}")
        for crash in self.crashes:
            if not isinstance(crash, CrashEvent):
                raise ConfigurationError(
                    f"crashes must hold CrashEvent instances, got {crash!r}")

    @property
    def max_crash_node_index(self) -> int:
        """Largest node index named by a crash, or -1 with no crashes."""
        if not self.crashes:
            return -1
        return max(crash.node_index for crash in self.crashes)

    @property
    def has_message_faults(self) -> bool:
        return (self.drop_probability > 0
                or self.duplicate_probability > 0
                or self.delay_jitter_s > 0)


#: Named presets exercised by ``repro chaos`` and the chaos test suite.
#: Collectively they cover loss >= 10%, duplication, delay jitter, and
#: at least one node crash/recovery; "chaos" combines all of them.
FAULT_PRESETS: Dict[str, FaultPlan] = {
    "lossy-net": FaultPlan(
        name="lossy-net",
        drop_probability=0.12,
        delay_jitter_s=0.0005,
    ),
    "dup-delay": FaultPlan(
        name="dup-delay",
        duplicate_probability=0.15,
        delay_jitter_s=0.002,
    ),
    "lock-timeout": FaultPlan(
        name="lock-timeout",
        lock_wait_timeout_s=0.002,
    ),
    "crash-recover": FaultPlan(
        name="crash-recover",
        crashes=(CrashEvent(node_index=1, at_s=0.004, down_for_s=0.01),),
    ),
    "chaos": FaultPlan(
        name="chaos",
        drop_probability=0.10,
        duplicate_probability=0.05,
        delay_jitter_s=0.001,
        lock_wait_timeout_s=0.01,
        crashes=(CrashEvent(node_index=1, at_s=0.004, down_for_s=0.008),),
    ),
}
