"""GDO home failover and node rejoin.

Two responsibilities, both deterministic functions of ``(plan, time)``:

* **Failover** — when a GDO home has been down past the plan's
  ``failover_detect_s``, every directory entry homed there is re-homed
  to a *deterministic successor*: the next live node in shard order,
  ``(crashed + k) mod N`` for the smallest ``k`` with a live node.
  Every site computes the same successor from the same static crash
  windows without any coordination, which is the whole determinism
  argument (DESIGN §13).  The move reuses the adaptive-migration
  machinery — ``Directory.move_home`` plus the lock manager's
  stale-home request forwarding — so in-flight messages addressed to
  the old home keep working.  Failover moves are *not* charged to the
  network: the crashed home cannot participate in a handoff, and the
  successor reconstructs the entry from the directory it already
  shares (same rationale as the uncharged ``crash_release``).

* **Rejoin** — when the node comes back it replays its durable record
  (:mod:`repro.faults.wal`): committed page versions are cross-checked
  against the live directory (stable storage must never be *ahead* of
  the cluster), failed-over homes are reclaimed, and stale holder
  records are reconciled — families that terminated during the window
  are discarded rather than resurrected.  The
  ``skip-rejoin-invalidation`` test mutation skips exactly that
  discard, re-installing ghost retainers that block foreign families
  forever; the ``invariant.liveness`` checker exists to catch it.
"""

from typing import TYPE_CHECKING, Dict, Optional

from repro.util.backoff import backoff_delay
from repro.util.errors import ProtocolError
from repro.util.ids import NodeId, ObjectId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.faults.injector import FaultInjector

__all__ = ["RecoveryManager", "SKIP_REJOIN_INVALIDATION"]

#: LockManager.test_mutations key: forget to reconcile stale holder
#: records on rejoin, resurrecting ghost holders.
SKIP_REJOIN_INVALIDATION = "skip-rejoin-invalidation"


class RecoveryManager:
    """Drives failover and rejoin for one cluster."""

    def __init__(self, env, injector: "FaultInjector", directory, cache,
                 lockmgr, wal, nodes, tracer):
        self.env = env
        self.injector = injector
        self.directory = directory
        self.cache = cache
        self.lockmgr = lockmgr
        self.wal = wal
        self.nodes = list(nodes)
        self.tracer = tracer
        #: Failover moves awaiting reconciliation: object id -> the
        #: original (crashed) home.  Adaptive migrations never appear
        #: here, so rejoin reclaims exactly the failover moves.
        self._failed_over: Dict[ObjectId, NodeId] = {}

    # -- determinism core --------------------------------------------------

    def successor_of(self, node_index: int, now: float) -> Optional[NodeId]:
        """Next live node in shard order after ``node_index``.

        Pure function of the static crash windows and ``now``; returns
        ``None`` when every other node is down too.
        """
        count = len(self.nodes)
        for step in range(1, count):
            candidate = self.nodes[(node_index + step) % count]
            if not self.injector.is_down(candidate, now):
                return candidate
        return None

    # -- failover ----------------------------------------------------------

    def failover(self, crash):
        """Simulation process: detect a dead home, re-home its entries.

        Scheduled by the crash controller at the crash instant; waits
        the detection timeout (one step of the unified backoff curve),
        confirms the node is still down, then moves every entry homed
        there to the deterministic successor.
        """
        detect = self.injector.failover_detect_s()
        if detect <= 0:
            return
        yield self.env.timeout(backoff_delay(detect, 0))
        now = self.env.now
        if not self.injector.is_down(self.nodes[crash.node_index], now):
            return  # recovered before detection fired: no failover
        successor = self.successor_of(crash.node_index, now)
        if successor is None:
            return  # no live successor; entries stay stranded
        for object_id, entry in sorted(
            self.directory.entries().items(),
            key=lambda item: item[0].value,
        ):
            if entry.home_node.value != crash.node_index:
                continue
            old_home = self.directory.move_home(object_id, successor)
            self._failed_over[object_id] = old_home
            # Only the successor's record changes: the crashed node's
            # stable storage is unreachable, so its (now stale) home
            # and holder records stay put until its own rejoin
            # reconciles them.
            self.wal.record_home(successor.value, object_id)
            # The old home's cached holder lists died with it and the
            # entry's routing changed: no site's cache is authoritative.
            self.cache.on_freed(object_id)
            self.injector.stats.failovers += 1
            self.tracer.gdo_failover(object_id, old_home, successor)

    # -- rejoin ------------------------------------------------------------

    def rejoin(self, crash) -> None:
        """Replay the node's durable record and re-integrate it."""
        node_index = crash.node_index
        me = self.nodes[node_index]
        record = self.wal.node(node_index)
        # 1. Page-version replay: stable storage survived, so every
        # committed version the node recorded must still be known to
        # the cluster (a *newer* directory version just means the page
        # moved on while the node was down — that is fine).
        replayed = 0
        for (object_id, page), version in sorted(
            record.pages.items(),
            key=lambda item: (item[0][0].value, item[0][1]),
        ):
            entry = self.directory.entry(object_id)
            if entry.latest_version(page) < version:
                raise ProtocolError(
                    f"rejoin N{node_index}: durable record has "
                    f"{object_id!r} page {page} at v{version} but the "
                    f"directory only knows v{entry.latest_version(page)} "
                    f"— stable storage was lost"
                )
            replayed += 1
        self.injector.stats.rejoin_replayed_records += replayed
        # 2. Reclaim the homes failover moved away.  The successor's
        # serving window ends here; stale-home forwarding covers any
        # request still in flight toward it.
        reclaimed = 0
        mine = sorted(
            (object_id for object_id, orig in self._failed_over.items()
             if orig.value == node_index),
            key=lambda object_id: object_id.value,
        )
        for object_id in mine:
            old_home = self.directory.move_home(object_id, me)
            self.wal.record_home_moved(
                old_home.value, node_index, object_id)
            self.cache.on_freed(object_id)
            del self._failed_over[object_id]
            reclaimed += 1
        self.injector.stats.rejoin_reclaimed_homes += reclaimed
        # 3. Holder reconciliation: a recorded holder that is no longer
        # in the live entry terminated (crash abort, commit, release)
        # during the window — it is a ghost and must be discarded, not
        # resurrected.  The seeded mutation skips the discard to prove
        # the liveness checker notices the resulting stuck waiters.
        mutated = SKIP_REJOIN_INVALIDATION in self.lockmgr.test_mutations
        discarded = 0
        for object_id, snapshot in sorted(
            record.holders.items(),
            key=lambda item: item[0].value,
        ):
            entry = self.directory.entry(object_id)
            for txn, mode in snapshot:
                if txn.id in entry.holders or txn.id in entry.retainers:
                    continue  # still live: nothing to reconcile
                if mutated:
                    entry._retain(txn, mode)  # ghost resurrection (bug)
                else:
                    discarded += 1
        record.holders.clear()
        self.injector.stats.rejoin_discarded_holders += discarded
        self.tracer.node_rejoin(node_index, replayed, reclaimed, discarded)
