"""Per-node durable write-ahead records for crash recovery.

The crash model has always been fail-stop *with stable storage*; this
module gives that stable storage a concrete shape.  Each node keeps a
:class:`NodeWal` — an append-free last-writer-wins record of

* **committed page versions** the node owns (written by the executor
  at every root commit),
* **GDO entries homed here** (written at registration and on every
  home move, adaptive or failover),
* **holder lists** of those entries (written by the lock manager on
  every global grant/release that changes an entry it homes),

and the :class:`~repro.faults.recovery.RecoveryManager` replays the
record when the node rejoins: page versions are cross-checked against
the live directory, failed-over homes are reclaimed, and stale holder
records are reconciled against the live entry state (families that
died or released during the window must *not* be resurrected — the
``skip-rejoin-invalidation`` test mutation deliberately breaks exactly
this step so the invariant checkers can prove they would catch it).

The record is in-memory: the simulation has no real disks, and what
matters for the protocol argument is the *information flow* — recovery
may consult only what was explicitly recorded before the crash instant,
never live volatile state of other nodes.  :data:`NULL_WAL` keeps
fault-free runs byte-identical to a build without this module.
"""

from typing import Dict, List, Tuple

__all__ = ["NodeWal", "WalSet", "NullWalSet", "NULL_WAL"]


class NodeWal:
    """The durable record of one node."""

    def __init__(self, node_index: int):
        self.node_index = node_index
        #: (object id, page index) -> committed version owned here.
        self.pages: Dict[Tuple[object, int], int] = {}
        #: object ids of GDO entries homed at this node.
        self.homes: set = set()
        #: object id -> holder-list snapshot [(txn, mode), ...] of an
        #: entry homed here, as of the last global grant/release.
        self.holders: Dict[object, List[Tuple[object, object]]] = {}

    def record_count(self) -> int:
        return len(self.pages) + len(self.homes) + len(self.holders)


class WalSet:
    """All nodes' durable records, keyed by node index."""

    enabled = True

    def __init__(self, num_nodes: int):
        self._nodes = [NodeWal(index) for index in range(num_nodes)]

    def node(self, node_index: int) -> NodeWal:
        return self._nodes[node_index]

    # -- write paths (called from the executor / lock manager / cluster) --

    def record_page(self, node_index: int, object_id, page: int,
                    version: int) -> None:
        self._nodes[node_index].pages[(object_id, page)] = version

    def record_home(self, node_index: int, object_id) -> None:
        self._nodes[node_index].homes.add(object_id)

    def record_home_moved(self, old_index: int, new_index: int,
                          object_id) -> None:
        wal = self._nodes[old_index]
        wal.homes.discard(object_id)
        wal.holders.pop(object_id, None)
        self._nodes[new_index].homes.add(object_id)

    def record_holders(self, node_index: int, object_id, entry) -> None:
        """Snapshot an entry's holder/retainer table.

        Stores live transaction references on purpose: replay must be
        able to point back at the exact transactions named by the
        record, because reconciliation's job is to decide which of
        them are ghosts.
        """
        snapshot: List[Tuple[object, object]] = [
            (entry._holder_txns[txn_id], mode)
            for txn_id, mode in entry.holders.items()
        ]
        snapshot.extend(
            (entry._retainer_txns[txn_id], mode)
            for txn_id, mode in entry.retainers.items()
        )
        self._nodes[node_index].holders[object_id] = snapshot


class NullWalSet:
    """WAL disabled: every write is a no-op and nothing is recorded.

    The default when the plan schedules no crashes — recovery never
    runs, so recording would be pure overhead on the commit path.
    """

    enabled = False

    def record_page(self, node_index, object_id, page, version) -> None:
        pass

    def record_home(self, node_index, object_id) -> None:
        pass

    def record_home_moved(self, old_index, new_index, object_id) -> None:
        pass

    def record_holders(self, node_index, object_id, entry) -> None:
        pass


#: Shared disabled record — the default everywhere one is optional.
NULL_WAL = NullWalSet()
