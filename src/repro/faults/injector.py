"""Fault injectors: the seeded decision engine behind the chaos plan.

The injector is consulted at exactly the points where the real system
would misbehave — per remote message at the network layer, per blocked
lock wait, and per node at transaction-start — and answers from one
dedicated RNG sub-stream (``rng.derive("faults")``), so fault
decisions never perturb the scheduler, workload, or executor streams.

Two implementations share one interface:

* :class:`NullInjector` (shared :data:`NULL_INJECTOR`) is the default
  everywhere: it draws nothing from any RNG and answers "no fault" to
  every query, which keeps a fault-free run byte-identical to a build
  without this package.
* :class:`FaultInjector` evaluates a
  :class:`~repro.faults.plan.FaultPlan` with a fixed draw order
  (drop, then duplicate, then jitter) so the fault schedule is a
  deterministic function of ``(seed, plan)``.  Draws for messages the
  network has tagged with a ``wire_id`` come from a sub-stream keyed
  by ``(wire_id, attempt)``: the fate of one wire message is then a
  pure function of ``(seed, plan, wire id, attempt)``, identical on
  the asynchronous ``send`` and synchronous ``charge`` paths.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.faults.plan import FaultPlan
from repro.util.backoff import backoff_delay
from repro.util.rng import SeededRNG

__all__ = [
    "FaultStats", "MessageFaults", "NO_FAULTS",
    "NullInjector", "NULL_INJECTOR", "FaultInjector",
]


@dataclass
class FaultStats:
    """Aggregate fault/recovery accounting for one cluster run."""

    messages_dropped: int = 0
    messages_duplicated: int = 0
    retransmissions: int = 0
    delay_injected_s: float = 0.0
    lock_timeouts: int = 0
    crashes: int = 0
    recoveries: int = 0
    crash_aborted_families: int = 0
    partition_dropped: int = 0
    slow_delay_s: float = 0.0
    failovers: int = 0
    failover_reroutes: int = 0
    rejoin_replayed_records: int = 0
    rejoin_reclaimed_homes: int = 0
    rejoin_discarded_holders: int = 0

    def snapshot(self) -> Dict[str, float]:
        return {
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "retransmissions": self.retransmissions,
            "delay_injected_s": self.delay_injected_s,
            "lock_timeouts": self.lock_timeouts,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "crash_aborted_families": self.crash_aborted_families,
            "partition_dropped": self.partition_dropped,
            "slow_delay_s": self.slow_delay_s,
            "failovers": self.failovers,
            "failover_reroutes": self.failover_reroutes,
            "rejoin_replayed_records": self.rejoin_replayed_records,
            "rejoin_reclaimed_homes": self.rejoin_reclaimed_homes,
            "rejoin_discarded_holders": self.rejoin_discarded_holders,
        }


@dataclass(frozen=True)
class MessageFaults:
    """The injector's verdict for one transmission attempt."""

    dropped: bool = False
    duplicated: bool = False
    extra_delay_s: float = 0.0


#: Shared "nothing happened" verdict — the only one NullInjector returns.
NO_FAULTS = MessageFaults()


class NullInjector:
    """Fault injection disabled: every query answers "no fault".

    ``stats`` is a class-level all-zero record that is never mutated
    (the network layer only touches injector stats on fault branches,
    which this class never takes), so sharing :data:`NULL_INJECTOR`
    across clusters is safe.
    """

    enabled = False
    plan = None
    stats = FaultStats()

    def message_faults(self, message, attempt, now, synchronous=False):
        return NO_FAULTS

    def lock_wait_timeout_s(self) -> float:
        return 0.0

    def retransmit_timeout_s(self, attempt: int = 0) -> float:
        return 0.0

    def failover_detect_s(self) -> float:
        return 0.0

    def is_down(self, node, now) -> bool:
        return False

    def down_until(self, node, now) -> float:
        return 0.0

    def cut(self, src, dst, now) -> bool:
        return False

    def partition_until(self, src, dst, now) -> float:
        return 0.0


#: Shared disabled injector — the default everywhere one is optional.
NULL_INJECTOR = NullInjector()


class FaultInjector(NullInjector):
    """Evaluate a :class:`FaultPlan` against a seeded RNG stream.

    Crash windows are static intervals computed from the plan up
    front, so "is node N down at time t" is answerable without any
    mutable controller state; the
    :class:`~repro.faults.crash.CrashController` only performs the
    *side effects* of a crash (family aborts, GDO cleanup).
    """

    enabled = True

    def __init__(self, plan: FaultPlan, rng: SeededRNG):
        self.plan = plan
        self.rng = rng
        self.stats = FaultStats()
        self._down: Dict[int, List[Tuple[float, float]]] = {}
        for crash in plan.crashes:
            self._down.setdefault(crash.node_index, []).append(
                (crash.at_s, crash.up_at_s))
        for windows in self._down.values():
            windows.sort()
        # Partition windows are equally static: (start, end, group_a).
        self._cuts: List[Tuple[float, float, frozenset]] = sorted(
            (cut.at_s, cut.heal_at_s, frozenset(cut.group_a))
            for cut in plan.partitions
        )
        self._slow: Dict[int, List[Tuple[float, float, float]]] = {}
        for slow in plan.slow_nodes:
            self._slow.setdefault(slow.node_index, []).append(
                (slow.at_s, slow.until_s, slow.per_message_s))
        for windows in self._slow.values():
            windows.sort()

    # -- crash windows -----------------------------------------------------

    def is_down(self, node, now) -> bool:
        return self.down_until(node, now) > now

    def down_until(self, node, now) -> float:
        """End of the crash window covering ``now``, or 0.0 if up."""
        for start, end in self._down.get(node.value, ()):
            if start <= now < end:
                return end
        return 0.0

    # -- partition and slow-node windows -----------------------------------

    def cut(self, src, dst, now) -> bool:
        return self.partition_until(src, dst, now) > now

    def partition_until(self, src, dst, now) -> float:
        """Heal instant of the partition separating ``src`` from
        ``dst`` at ``now``, or 0.0 when they can talk."""
        for start, end, group_a in self._cuts:
            if start <= now < end and (
                (src.value in group_a) != (dst.value in group_a)
            ):
                return end
        return 0.0

    def _slow_extra(self, node, now) -> float:
        for start, end, per_message_s in self._slow.get(node.value, ()):
            if start <= now < end:
                return per_message_s
        return 0.0

    # -- message faults ----------------------------------------------------

    def message_faults(self, message, attempt, now, synchronous=False):
        """Decide the fate of one transmission attempt.

        A message to or from a crashed node is always lost (the
        retransmission loop redelivers it after recovery); the
        synchronous ``charge`` path skips this rule because its clock
        is frozen and waiting for recovery would never terminate.
        Probabilistic drops apply only while ``attempt`` is within the
        plan's retransmit limit — past it the channel turns lossless,
        which is what makes fair-loss delivery (and the run) terminate.

        Probabilistic draws are *keyed per wire message*: once the
        network assigns a ``wire_id``, every draw comes from a stream
        derived from ``(wire_id, attempt)``.  A batched multi-object
        message is therefore exactly one fault unit (not one per
        logical page set), and the verdict for a given attempt is
        independent of how many other messages are in flight.  The
        draw order is fixed — drop, then duplicate, then jitter — and
        all three are always evaluated, so a single attempt can be
        dropped *and* duplicated (both wire copies lost) with
        identical accounting on the asynchronous and synchronous
        paths.  Messages that never hit the network (direct unit
        probes) fall back to the injector's shared sequential stream.
        """
        plan = self.plan
        if not synchronous and (self.is_down(message.src, now)
                                or self.is_down(message.dst, now)):
            self.stats.messages_dropped += 1
            return MessageFaults(dropped=True)
        if not synchronous and self.cut(message.src, message.dst, now):
            self.stats.messages_dropped += 1
            self.stats.partition_dropped += 1
            return MessageFaults(dropped=True)
        rng = (self.rng if message.wire_id is None
               else self.rng.derive("msg", message.wire_id, attempt))
        dropped = (plan.drop_probability > 0
                   and attempt < plan.retransmit_limit
                   and rng.maybe(plan.drop_probability))
        duplicated = (plan.duplicate_probability > 0
                      and rng.maybe(plan.duplicate_probability))
        extra = (rng.uniform(0.0, plan.delay_jitter_s)
                 if plan.delay_jitter_s > 0 else 0.0)
        # Slow-node service latency is deterministic (no draw): a fixed
        # surcharge per message touching a degraded endpoint, applied
        # on both the asynchronous and synchronous paths so accounting
        # stays path-independent.
        slow = (self._slow_extra(message.src, now)
                + self._slow_extra(message.dst, now))
        if dropped:
            self.stats.messages_dropped += 1
        if duplicated:
            self.stats.messages_duplicated += 1
        if extra:
            self.stats.delay_injected_s += extra
        if slow:
            self.stats.slow_delay_s += slow
        if not dropped and not duplicated and not extra and not slow:
            return NO_FAULTS
        return MessageFaults(dropped=dropped, duplicated=duplicated,
                             extra_delay_s=extra + slow)

    # -- recovery parameters ----------------------------------------------

    def lock_wait_timeout_s(self) -> float:
        return self.plan.lock_wait_timeout_s

    def retransmit_timeout_s(self, attempt: int = 0) -> float:
        """Retransmission delay before attempt ``attempt + 1``.

        Capped exponential backoff from the plan's base timeout — the
        same :func:`~repro.util.backoff.backoff_delay` curve the
        executor's retry loop and the failover reroute path use, here
        without jitter so the sim and TCP backends account the
        identical schedule.
        """
        return backoff_delay(self.plan.retransmit_timeout_s, attempt)

    def failover_detect_s(self) -> float:
        return self.plan.failover_detect_s
