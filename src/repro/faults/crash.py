"""Node crash/recovery side effects.

The *timing* of a crash is static — the injector's down-windows are
computed from the plan — but a crash also has to actively damage the
running system: every non-committing transaction family hosted on the
node is interrupted mid-coroutine, its directory entries are
reclaimed so other families stop waiting on a ghost, and holder-list
cache entries pointing at the node are invalidated.  This module
performs those side effects at the scheduled instants.

The model is fail-stop with stable storage: committed page versions
owned by the node survive the window (as if disk-backed), and a family
that has passed its commit point (``committing`` flag set by the
executor) is allowed to finish — its remaining messages are simply
delayed by the down-window drop/retransmit rule, which preserves
commit atomicity without a write-ahead log.
"""

from typing import TYPE_CHECKING

from repro.util.errors import NodeCrashError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.faults.injector import FaultInjector

__all__ = ["CrashController"]


class CrashController:
    """Schedules the plan's crash and partition windows as processes."""

    def __init__(self, env, injector: "FaultInjector", lockmgr, cache,
                 executor, tracer, recovery=None):
        self.env = env
        self.injector = injector
        self.lockmgr = lockmgr
        self.cache = cache
        self.executor = executor
        self.tracer = tracer
        # Optional RecoveryManager: arms GDO home failover after the
        # detection timeout and durable replay/reconciliation on rejoin.
        self.recovery = recovery

    def schedule(self) -> None:
        """Spawn one driver process per planned crash/partition event."""
        for crash in self.injector.plan.crashes:
            self.env.process(self._run(crash),
                             name=f"fault.crash:N{crash.node_index}")
        for index, cut in enumerate(self.injector.plan.partitions):
            # Enforcement lives in the injector's static windows; these
            # processes only record the start/heal instants, which the
            # liveness checker needs to know when waiting is excusable.
            self.env.process(self._run_partition(cut),
                             name=f"fault.partition:{index}")

    def _run(self, crash):
        if crash.at_s > 0:
            yield self.env.timeout(crash.at_s)
        self._crash(crash)
        if self.recovery is not None:
            self.env.process(self.recovery.failover(crash),
                             name=f"fault.failover:N{crash.node_index}")
        yield self.env.timeout(crash.up_at_s - crash.at_s)
        self._recover(crash)

    def _run_partition(self, cut):
        if cut.at_s > 0:
            yield self.env.timeout(cut.at_s)
        self.tracer.partition_start(cut.group_a, cut.heal_after_s)
        yield self.env.timeout(cut.heal_after_s)
        self.tracer.partition_heal(cut.group_a)

    def _crash(self, crash) -> None:
        node_index = crash.node_index
        self.injector.stats.crashes += 1
        self.tracer.node_crash(node_index, crash.up_at_s - crash.at_s)
        crashed_roots = []
        for root, family in sorted(self.executor.live_families.items()):
            if family.node.value != node_index or family.committing:
                continue
            crashed_roots.append(root)
            self.injector.stats.crash_aborted_families += 1
            self.tracer.crash_abort(node_index, root)
            # Volatile state dies with the node: purge the family's
            # uncommitted writes from the store *before* crash_release
            # frees its locks, or a later family could read the doomed
            # writes while the interrupted coroutine's own (message-
            # stalled) unwinding has yet to reach the undo logs.
            self.executor.crash_rollback(family.txn)
            if family.process is not None:
                family.process.interrupt(
                    NodeCrashError(family.txn.id, node=family.node))
        invalidated = self.cache.invalidate_node(node_index)
        if invalidated:
            self.tracer.crash_cache_invalidate(node_index, invalidated)
        # Reclaim directory state even when no family was interrupted:
        # a family may already be unwinding (e.g. mid-abort) while its
        # waiters still sit in entry queues.
        self.lockmgr.crash_release(crashed_roots)

    def _recover(self, crash) -> None:
        self.injector.stats.recoveries += 1
        self.tracer.node_recover(crash.node_index)
        if self.recovery is not None:
            self.recovery.rejoin(crash)
