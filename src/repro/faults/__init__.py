"""repro.faults — deterministic chaos engine for the LOTEC stack.

The protocol of the paper is specified for a well-behaved cluster; this
package generates adverse schedules *deterministically* so the
correctness story extends from "clean runs pass" to "adversarial runs
pass".  Three fault classes are modelled:

* **message faults** — loss, duplication, and delay jitter, injected
  per message at the network layer and recovered by per-request
  timeouts with retransmission (:mod:`repro.net.network`);
* **node crash/recovery** — scheduled fail-stop windows that abort
  in-flight transaction families, reclaim their GDO entries, and
  invalidate holder-list caches (:mod:`repro.faults.crash`); each node
  keeps a durable record (:mod:`repro.faults.wal`) replayed on rejoin,
  and a crashed GDO home's entries fail over to a deterministic
  successor (:mod:`repro.faults.recovery`);
* **partitions and slow nodes** — node-set bipartitions with heal
  times (cross-cut messages are lost until the heal) and degraded
  nodes paying a fixed per-message service-latency surcharge;
* **lock-wait timeouts** — bounded waits that escalate to
  abort-and-retry with capped, seeded exponential backoff
  (:mod:`repro.util.backoff`, shared by the executor retry loop, the
  network retransmission timers, and the failover reroute path).

Everything derives from one :class:`FaultPlan` plus the cluster seed:
the same seed and plan produce the identical fault schedule and the
identical trace, and the default :data:`NULL_INJECTOR` makes a run
byte-identical to one without this package.
"""

from repro.faults.crash import CrashController
from repro.faults.injector import (
    NO_FAULTS,
    NULL_INJECTOR,
    FaultInjector,
    FaultStats,
    MessageFaults,
    NullInjector,
)
from repro.faults.plan import (
    FAULT_PRESETS,
    CrashEvent,
    FaultPlan,
    PartitionEvent,
    SlowNodeEvent,
)
from repro.faults.recovery import SKIP_REJOIN_INVALIDATION, RecoveryManager
from repro.faults.wal import NULL_WAL, NodeWal, NullWalSet, WalSet

__all__ = [
    "FAULT_PRESETS",
    "NO_FAULTS",
    "NULL_INJECTOR",
    "NULL_WAL",
    "SKIP_REJOIN_INVALIDATION",
    "CrashController",
    "CrashEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "MessageFaults",
    "NodeWal",
    "NullInjector",
    "NullWalSet",
    "PartitionEvent",
    "RecoveryManager",
    "SlowNodeEvent",
    "WalSet",
]
