"""Injectable same-instant tie-break policies for the event heap.

The engine orders its pending-event heap by ``(time, rank, sequence)``.
With no policy installed the rank is always 0, so same-instant events
run in strict schedule order (FIFO) — byte-identical to the historic
behaviour.  A :class:`TieBreakPolicy` perturbs only the *rank* of
events that share an instant; causality (time order) is untouched, so
every perturbed schedule is still a legal execution of the simulated
system.  This is the schedule-exploration knob ``repro.check`` drives:
one seed, one reproducible interleaving.

Policies read :attr:`~repro.sim.events.Event.hints`, a small metadata
dict call sites attach to scheduling-relevant events (lock-wait wakes
carry the waiter's mode and node; network deliveries carry the
destination node and message category).  Events without hints rank 0
under every deterministic policy.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.util.errors import ConfigurationError
from repro.util.rng import derive_seed


class TieBreakPolicy:
    """Base policy: rank every event 0 (explicit FIFO)."""

    name = "fifo"

    def rank(self, event) -> int:
        """Heap rank among events scheduled for the same instant.

        Lower ranks run first; ties fall back to schedule order.
        Called once per scheduling, so stateful policies see events in
        schedule order.
        """
        return 0


class LifoTieBreak(TieBreakPolicy):
    """Last scheduled runs first among same-instant events."""

    name = "lifo"

    def __init__(self):
        self._counter = 0

    def rank(self, event) -> int:
        self._counter -= 1
        return self._counter


class RandomWalkTieBreak(TieBreakPolicy):
    """Seeded random rank: every seed is a distinct reproducible walk
    through the space of same-instant orderings."""

    name = "random"

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def rank(self, event) -> int:
        return self._rng.randrange(1 << 30)


class WriterFirstTieBreak(TieBreakPolicy):
    """Adversarial: wake write-lock waiters before read-lock waiters.

    Stresses the reader-preference paths of Algorithm 4.4 — a writer
    admitted at the same instant readers were queued is exactly the
    interleaving FIFO rarely produces."""

    name = "writer-first"

    def rank(self, event) -> int:
        mode = event.hints.get("mode")
        if mode == "W":
            return -1
        if mode == "R":
            return 1
        return 0


class ReaderFirstTieBreak(TieBreakPolicy):
    """Adversarial mirror of :class:`WriterFirstTieBreak`."""

    name = "reader-first"

    def rank(self, event) -> int:
        mode = event.hints.get("mode")
        if mode == "R":
            return -1
        if mode == "W":
            return 1
        return 0


class StarveNodeTieBreak(TieBreakPolicy):
    """Adversarial: one node's wakes and deliveries always lose ties.

    Maximizes the window in which the starved node's transactions sit
    behind everyone else — the classic recipe for exposing fairness and
    retained-lock bugs."""

    name = "starve-node"

    def __init__(self, node_index: int):
        self.node_index = node_index

    def rank(self, event) -> int:
        if event.hints.get("node") == self.node_index:
            return 1
        return 0


#: Recognised policy specs (``starve-node`` also accepts an explicit
#: ``starve-node:<index>`` form).
TIEBREAK_POLICIES = (
    "fifo", "lifo", "random", "writer-first", "reader-first", "starve-node",
)


def validate_tiebreak(spec: str) -> None:
    """Raise :class:`ConfigurationError` unless ``spec`` names a policy."""
    base, _, index = spec.partition(":")
    if base not in TIEBREAK_POLICIES:
        raise ConfigurationError(
            f"tiebreak must be one of {TIEBREAK_POLICIES}, got {spec!r}"
        )
    if index:
        if base != "starve-node":
            raise ConfigurationError(
                f"only starve-node takes an index, got {spec!r}"
            )
        if not index.isdigit():
            raise ConfigurationError(
                f"starve-node index must be an integer, got {spec!r}"
            )


def make_tiebreak(spec: str, seed: int,
                  num_nodes: int) -> Optional[TieBreakPolicy]:
    """Build the policy named by ``spec``; ``"fifo"`` returns ``None``
    (the engine's zero-overhead default path).

    ``seed`` feeds the random walk (derived, so it never collides with
    other consumers of the master seed); ``starve-node`` without an
    explicit index picks ``seed % num_nodes`` so a seed sweep starves
    every node in turn.
    """
    validate_tiebreak(spec)
    base, _, index = spec.partition(":")
    if base == "fifo":
        return None
    if base == "lifo":
        return LifoTieBreak()
    if base == "random":
        return RandomWalkTieBreak(derive_seed(seed, "tiebreak"))
    if base == "writer-first":
        return WriterFirstTieBreak()
    if base == "reader-first":
        return ReaderFirstTieBreak()
    node_index = int(index) if index else seed % num_nodes
    if node_index >= num_nodes:
        raise ConfigurationError(
            f"starve-node index {node_index} out of range for "
            f"{num_nodes} node(s)"
        )
    return StarveNodeTieBreak(node_index)
