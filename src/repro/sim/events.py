"""One-shot events for the simulation kernel.

An :class:`Event` moves through exactly one lifecycle::

    PENDING --succeed(value)--> TRIGGERED(ok)   --processed--> fired
    PENDING --fail(exc)-------> TRIGGERED(fail) --processed--> fired

Processes wait on events by yielding them; the engine resumes the
process with the event's value (or throws the event's exception into
the generator, which is how lock-wait aborts and deadlock victims are
implemented without a separate interrupt mechanism).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.util.errors import ProtocolError

_PENDING = object()


class Event:
    """A one-shot occurrence that simulation processes can wait on."""

    #: Scheduling metadata for tie-break policies
    #: (:mod:`repro.sim.tiebreak`).  Class-level empty default: call
    #: sites that matter (lock-wait wakes, network deliveries) assign a
    #: per-instance dict; everything else shares this one frozen-ish
    #: mapping and pays nothing.
    hints: dict = {}

    def __init__(self, env, name: str = ""):
        self.env = env
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once succeed() or fail() has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise ProtocolError(f"event {self} not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise ProtocolError(f"event {self} not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; waiters resume with ``value``."""
        if self.triggered:
            raise ProtocolError(f"event {self} triggered twice")
        self._value = value
        self._ok = True
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception thrown into each waiter."""
        if self.triggered:
            raise ProtocolError(f"event {self} triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.env._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register a callback; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = self.name or self.__class__.__name__
        return f"<{label} {state}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env, name=f"Timeout({delay})")
        self._value = value
        self._ok = True
        env._schedule_event(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":
        raise ProtocolError("Timeout triggers itself; do not call succeed()")

    def fail(self, exception: BaseException) -> "Event":
        raise ProtocolError("Timeout triggers itself; do not call fail()")


class AllOf(Event):
    """Fires when every child event has fired successfully.

    If any child fails, this fails with that child's exception (first
    failure wins).  Value on success is the list of child values in the
    order given.
    """

    def __init__(self, env, events):
        super().__init__(env, name="AllOf")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires when the first child event fires (success or failure).

    Value on success is ``(index, value)`` of the winning child; a
    failing child fails this event with its exception.
    """

    def __init__(self, env, events):
        super().__init__(env, name="AnyOf")
        children = list(events)
        if not children:
            raise ValueError("AnyOf requires at least one event")
        for index, child in enumerate(children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((index, child.value))
        else:
            self.fail(child.value)
