"""The simulation environment: virtual clock plus pending-event heap."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, Optional

from repro.obs.tracer import NULL_TRACER
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.util.errors import ConfigurationError


class Environment:
    """Owns simulated time and executes triggered events in order.

    Events scheduled for the same instant are processed in trigger
    order (FIFO), which makes runs fully deterministic — essential for
    reproducible experiments and for the seeded workload generator.

    ``tiebreak`` optionally installs a
    :class:`~repro.sim.tiebreak.TieBreakPolicy` that re-ranks events
    *within* one instant (heap order becomes ``(time, rank, seq)``);
    time order — causality — is never perturbed, and with the default
    ``None`` every event ranks 0, reproducing plain FIFO exactly.
    Each policy is deterministic, so a (seed, policy) pair names one
    reproducible interleaving — the schedule-exploration surface of
    :mod:`repro.check`.

    ``tracer`` (settable after construction, since the tracer's clock
    is this environment) receives one ``sim.run`` span per :meth:`run`
    call; the default :data:`~repro.obs.tracer.NULL_TRACER` is a no-op.
    """

    def __init__(self, initial_time: float = 0.0, tracer=None, tiebreak=None):
        self._now = float(initial_time)
        self._queue: list = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tiebreak = tiebreak

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed since construction (diagnostics)."""
        return self._events_processed

    # -- factory helpers -------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        policy = self.tiebreak
        rank = 0 if policy is None else policy.rank(event)
        heapq.heappush(
            self._queue,
            (self._now + delay, rank, next(self._sequence), event),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        when, _rank, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self._events_processed += 1
        event._process()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulated time.  With ``until`` set, the clock
        is advanced exactly to ``until`` even if the last event fires
        earlier, matching the usual DES convention.
        """
        if until is not None and until < self._now:
            raise ConfigurationError(
                f"run(until={until}) is before current time {self._now}"
            )
        token = self.tracer.begin("sim.run", "sim", until=until)
        processed_before = self._events_processed
        try:
            while self._queue:
                if until is not None and self.peek() > until:
                    self._now = until
                    return self._now
                self.step()
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        finally:
            self.tracer.end(
                token, events=self._events_processed - processed_before
            )

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn a process, run to completion, return value.

        Raises the process's exception if it terminated with one.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise ConfigurationError(
                f"process {proc} did not finish (waiting on an event "
                f"nothing will ever trigger)"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
