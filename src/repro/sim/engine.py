"""The simulation environment: virtual clock plus pending-event heap."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generator, List, Optional

from repro.obs.tracer import NULL_TRACER
from repro.sim.events import _PENDING, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.util.errors import ConfigurationError, ProtocolError


class _Bootstrap:
    """Recycled one-shot trigger that kicks a freshly spawned process.

    Spawning allocated a full :class:`~repro.sim.events.Event` (name
    f-string, callback list) per process just to deliver one ``None``
    on the next step.  This stand-in carries only the resume hook and
    returns itself to the environment's pool after firing, so process
    churn costs no per-spawn event allocation.  The class attributes
    mirror a succeeded event exactly (``ok``/``value``/empty ``hints``),
    which is all :meth:`Process._resume` and the tie-break policies
    ever read.
    """

    __slots__ = ("env", "resume")

    ok = True
    value = None
    hints: dict = {}

    def __init__(self, env, resume):
        self.env = env
        self.resume = resume

    def _process(self) -> None:
        resume, self.resume = self.resume, None
        resume(self)
        self.env._bootstrap_pool.append(self)


class _WakeBatch:
    """One heap entry standing in for several same-instant wake events.

    The batched events are already triggered (value/ok set); popping
    the batch runs their callbacks back-to-back in trigger order —
    exactly the order separate heap entries would have produced under
    FIFO, since nothing can be scheduled between consecutive
    ``succeed`` calls.  ``events_processed`` is advanced by the batch
    size so the ``sim.run`` span's ``events=`` count (and the
    events/s metric) stays identical to the unbatched schedule.
    """

    __slots__ = ("env", "events")

    def __init__(self, env, events):
        self.env = env
        self.events = events

    def _process(self) -> None:
        self.env._events_processed += len(self.events) - 1
        for event in self.events:
            event._process()


class Environment:
    """Owns simulated time and executes triggered events in order.

    Events scheduled for the same instant are processed in trigger
    order (FIFO), which makes runs fully deterministic — essential for
    reproducible experiments and for the seeded workload generator.

    ``tiebreak`` optionally installs a
    :class:`~repro.sim.tiebreak.TieBreakPolicy` that re-ranks events
    *within* one instant (heap order becomes ``(time, rank, seq)``);
    time order — causality — is never perturbed, and with the default
    ``None`` every event ranks 0, reproducing plain FIFO exactly.
    Each policy is deterministic, so a (seed, policy) pair names one
    reproducible interleaving — the schedule-exploration surface of
    :mod:`repro.check`.

    The default-FIFO configuration is the engine's fast path: heap
    entries shrink to ``(time, seq, event)`` (no rank slot, no
    ``policy.rank()`` call), and same-instant lock-wake groups may be
    batched into one entry (:meth:`succeed_all`).  Both are
    pop-order-identical to the ranked path by construction — see
    ``tests/test_engine_fastpath.py``.

    ``tracer`` (settable after construction, since the tracer's clock
    is this environment) receives one ``sim.run`` span per :meth:`run`
    call; the default :data:`~repro.obs.tracer.NULL_TRACER` is a no-op.
    """

    def __init__(self, initial_time: float = 0.0, tracer=None, tiebreak=None):
        self._now = float(initial_time)
        self._queue: list = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._bootstrap_pool: List[_Bootstrap] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tiebreak = tiebreak

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed since construction (diagnostics)."""
        return self._events_processed

    @property
    def tiebreak(self):
        """The installed tie-break policy (``None`` = FIFO fast path)."""
        return self._tiebreak

    @tiebreak.setter
    def tiebreak(self, policy) -> None:
        # The heap tuple shape depends on whether a policy is
        # installed; reshape any pending entries so mixed shapes never
        # coexist (switching mid-run is a test-only convenience —
        # ranks for already-queued events are assigned at switch time).
        if (policy is None) != (self._tiebreak is None) and self._queue:
            if policy is None:
                entries = [(t, s, e) for (t, _r, s, e) in self._queue]
            else:
                entries = [(t, policy.rank(e), s, e)
                           for (t, s, e) in self._queue]
            heapq.heapify(entries)
            self._queue = entries
        self._tiebreak = policy

    # -- factory helpers -------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event, delay: float = 0.0) -> None:
        policy = self._tiebreak
        if policy is None:
            heapq.heappush(
                self._queue,
                (self._now + delay, next(self._sequence), event),
            )
        else:
            heapq.heappush(
                self._queue,
                (self._now + delay, policy.rank(event),
                 next(self._sequence), event),
            )

    def _spawn_bootstrap(self, resume) -> None:
        """Schedule a pooled zero-delay trigger that calls ``resume``."""
        pool = self._bootstrap_pool
        if pool:
            bootstrap = pool.pop()
            bootstrap.resume = resume
        else:
            bootstrap = _Bootstrap(self, resume)
        self._schedule_event(bootstrap)

    def succeed_all(self, events, value: Any = None) -> None:
        """Trigger every pending event in ``events`` with ``value``.

        On the FIFO fast path the group becomes *one* heap entry whose
        processing runs each event's callbacks in order — identical
        pop order to individual ``succeed`` calls (nothing can be
        scheduled between them), at a fraction of the heap traffic.
        With a tie-break policy installed each event must be ranked
        individually, so the batch degenerates to per-event succeeds.
        """
        if not events:
            return
        if self._tiebreak is not None or len(events) == 1:
            for event in events:
                event.succeed(value)
            return
        for event in events:
            if event._value is not _PENDING:
                raise ProtocolError(f"event {event} triggered twice")
            event._value = value
            event._ok = True
        heapq.heappush(
            self._queue,
            (self._now, next(self._sequence), _WakeBatch(self, list(events))),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        entry = heapq.heappop(self._queue)
        self._now = entry[0]
        self._events_processed += 1
        entry[-1]._process()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulated time.  With ``until`` set, the clock
        is advanced exactly to ``until`` even if the last event fires
        earlier, matching the usual DES convention; both exit paths
        (queue drained, next event past ``until``) leave ``now``
        clamped to ``until`` and record the same ``events=`` count on
        the ``sim.run`` span.
        """
        if until is not None and until < self._now:
            raise ConfigurationError(
                f"run(until={until}) is before current time {self._now}"
            )
        token = self.tracer.begin("sim.run", "sim", until=until)
        processed_before = self._events_processed
        queue = self._queue
        pop = heapq.heappop
        try:
            if until is None:
                while queue:
                    entry = pop(queue)
                    self._now = entry[0]
                    self._events_processed += 1
                    entry[-1]._process()
            else:
                while queue:
                    when = queue[0][0]
                    if when > until:
                        self._now = until
                        return until
                    entry = pop(queue)
                    self._now = when
                    self._events_processed += 1
                    entry[-1]._process()
                self._now = max(self._now, until)
            return self._now
        finally:
            self.tracer.end(
                token, events=self._events_processed - processed_before
            )

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: spawn a process, run to completion, return value.

        Raises the process's exception if it terminated with one.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.triggered:
            raise ConfigurationError(
                f"process {proc} did not finish (waiting on an event "
                f"nothing will ever trigger)"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
