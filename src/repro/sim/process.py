"""Processes: generators driven by the event loop.

A process generator ``yield``s :class:`~repro.sim.events.Event`
instances.  When a yielded event fires, the engine resumes the
generator with the event's value; if the event *failed*, the exception
is thrown into the generator at the yield point so ordinary
``try/except`` implements wait-abort semantics (this is how a blocked
lock waiter learns it was chosen as a deadlock victim).

A process is itself an event: it succeeds with the generator's return
value, or fails with the exception that escaped the generator.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.events import Event


class Process(Event):
    """Wraps a generator and steps it as its awaited events fire."""

    def __init__(self, env, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                f"(did you call the function instead of passing its generator?)"
            )
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on = None
        self._pending_interrupt = None
        # Kick off on a zero-delay event so creation order does not matter.
        bootstrap = Event(env, name=f"init:{self.name}")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at its current wait point.

        The process detaches from the event it was waiting on (that
        event may still fire later; nothing listens) and resumes with
        the exception on the next simulation step, exactly as if the
        awaited event had failed.  Fault injection uses this to model
        a node crash killing an in-flight transaction family.  No-op
        on a finished process; a process interrupted before its
        bootstrap step receives the exception at its first yield.
        """
        if self.triggered:
            return
        target = self._waiting_on
        if target is None:
            # Not yet bootstrapped (or between steps): deliver lazily.
            self._pending_interrupt = exc
            return
        if target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        poison = Event(self.env, name=f"interrupt:{self.name}")
        poison.add_callback(self._resume)
        poison.fail(exc)

    def _resume(self, fired: Event) -> None:
        self._waiting_on = None
        try:
            if self._pending_interrupt is not None:
                exc = self._pending_interrupt
                self._pending_interrupt = None
                target = self._generator.throw(exc)
            elif fired.ok:
                target = self._generator.send(fired.value)
            else:
                target = self._generator.throw(fired.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - must propagate into event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = TypeError(
                f"process {self.name!r} yielded {target!r}; "
                f"processes may only yield simulation events"
            )
            try:
                self._generator.throw(exc)
            except BaseException as raised:  # noqa: BLE001
                self.fail(raised)
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name} {state}>"
