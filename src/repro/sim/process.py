"""Processes: generators driven by the event loop.

A process generator ``yield``s :class:`~repro.sim.events.Event`
instances.  When a yielded event fires, the engine resumes the
generator with the event's value; if the event *failed*, the exception
is thrown into the generator at the yield point so ordinary
``try/except`` implements wait-abort semantics (this is how a blocked
lock waiter learns it was chosen as a deadlock victim).

A process is itself an event: it succeeds with the generator's return
value, or fails with the exception that escaped the generator.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.events import Event


class Process(Event):
    """Wraps a generator and steps it as its awaited events fire."""

    def __init__(self, env, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                f"(did you call the function instead of passing its generator?)"
            )
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on = None
        self._pending_interrupt = None
        self._poison_pending = False
        # Kick off on a pooled zero-delay trigger so creation order
        # does not matter (and spawning allocates no per-process event).
        env._spawn_bootstrap(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at its current wait point.

        The process detaches from the event it was waiting on (that
        event may still fire later; nothing listens) and resumes with
        the exception on the next simulation step, exactly as if the
        awaited event had failed.  Fault injection uses this to model
        a node crash killing an in-flight transaction family.  No-op
        on a finished process; a process interrupted before its
        bootstrap step receives the exception at its first yield.

        The first interrupt wins: a second ``interrupt()`` before the
        process has observed the first (pending *or* in-flight poison)
        is dropped, so the process is resumed exactly once with
        exactly the first exception — never twice, and never with a
        later exception overwriting the first.
        """
        if self.triggered:
            return
        if self._pending_interrupt is not None or self._poison_pending:
            return  # first interrupt wins; the poison path is one-shot
        target = self._waiting_on
        if target is None:
            # Not yet bootstrapped (or between steps): deliver lazily.
            self._pending_interrupt = exc
            return
        if target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._poison_pending = True
        poison = Event(self.env, name=f"interrupt:{self.name}")
        poison.add_callback(self._resume)
        poison.fail(exc)

    def _resume(self, fired) -> None:
        self._waiting_on = None
        self._poison_pending = False
        generator = self._generator
        if self._pending_interrupt is not None:
            throw: object = self._pending_interrupt
            self._pending_interrupt = None
        elif fired.ok:
            throw = None
        else:
            throw = fired.value
        # Loop rather than recurse: a generator that *catches* an
        # injected exception (the non-Event TypeError below, or an
        # interrupt) and yields a fresh event must re-attach to it —
        # the pre-loop code discarded that recovered yield, leaving
        # the process permanently stalled.
        while True:
            try:
                if throw is not None:
                    target = generator.throw(throw)
                else:
                    target = generator.send(fired.value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - must propagate into event
                self.fail(exc)
                return
            if isinstance(target, Event):
                self._waiting_on = target
                target.add_callback(self._resume)
                return
            throw = TypeError(
                f"process {self.name!r} yielded {target!r}; "
                f"processes may only yield simulation events"
            )

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name} {state}>"
