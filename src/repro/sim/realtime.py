"""A wall-clock twin of :class:`~repro.sim.engine.Environment`.

The simulation engine's contract — processes yield events, timeouts
fire after a delay, same-instant ties are re-ranked by a policy — is
kept intact, but time is *real*: ``now`` is seconds of wall clock since
the first :meth:`WallClockEnvironment.run` call, timeouts sleep, and
external sources (the TCP transport's socket readers, which live on
another thread) inject deliveries through a thread-safe inbox that
wakes the run loop immediately.

The scheduling loop is the textbook real-time DES pattern: take the
earliest pending event; if its due time is still in the future, sleep
until then *or* until an external delivery arrives, whichever is
first; then process.  Causality is therefore preserved exactly as in
the virtual-clock engine, while delivery instants come from the
operating system instead of the cost model.
"""

from __future__ import annotations

import heapq
import queue
import time
from typing import Callable, List, Optional

from repro.sim.engine import Environment
from repro.util.errors import ConfigurationError, ProtocolError


class WallClockEnvironment(Environment):
    """Event engine whose clock is real elapsed time.

    ``stall_timeout_s`` bounds how long the run loop will wait for an
    external source (a transport with frames in flight) that produces
    nothing — a hung socket then surfaces as a
    :class:`~repro.util.errors.ProtocolError` instead of a silent hang.
    """

    def __init__(self, tracer=None, tiebreak=None,
                 stall_timeout_s: float = 30.0):
        super().__init__(0.0, tracer=tracer, tiebreak=tiebreak)
        if stall_timeout_s <= 0:
            raise ConfigurationError("stall_timeout_s must be positive")
        self.stall_timeout_s = stall_timeout_s
        self._inbox: "queue.Queue[Callable[[], None]]" = queue.Queue()
        self._sources: List = []
        self._start_wall: Optional[float] = None

    # -- external sources --------------------------------------------------

    def attach_source(self, source) -> None:
        """Register an external event source (``source.pending()`` must
        return the number of in-flight items the loop should wait for)."""
        self._sources.append(source)

    def call_threadsafe(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the engine thread at the current wall instant.

        The only safe way for another thread (the transport's socket
        loop) to touch engine state: ``fn`` typically succeeds a
        delivery event.  Wakes the run loop if it is sleeping.
        """
        self._inbox.put(fn)

    def _pending_external(self) -> int:
        return sum(source.pending() for source in self._sources)

    # -- clock -------------------------------------------------------------

    def _elapsed(self) -> float:
        if self._start_wall is None:
            return self._now
        return time.monotonic() - self._start_wall

    def _advance(self, at_least: float = 0.0) -> None:
        """Move the clock to wall time (monotone, never backwards)."""
        self._now = max(self._now, at_least, self._elapsed())

    # -- run loop ----------------------------------------------------------

    def _drain_inbox(self) -> bool:
        """Run every queued external callback; True if any ran."""
        ran = False
        while True:
            try:
                fn = self._inbox.get_nowait()
            except queue.Empty:
                return ran
            self._advance()
            fn()
            ran = True

    def _wait_inbox(self, timeout: float) -> bool:
        """Sleep until an external callback arrives (run it, True) or
        ``timeout`` elapses (False)."""
        try:
            fn = self._inbox.get(timeout=max(0.0, timeout))
        except queue.Empty:
            return False
        self._advance()
        fn()
        self._drain_inbox()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (and no frames are in flight) or
        the wall clock passes ``until`` seconds since the first run."""
        if self._start_wall is None:
            self._start_wall = time.monotonic() - self._now
        if until is not None and until < self._now:
            raise ConfigurationError(
                f"run(until={until}) is before current time {self._now}"
            )
        token = self.tracer.begin("sim.run", "sim", until=until)
        processed_before = self._events_processed
        try:
            while True:
                self._drain_inbox()
                if until is not None and self._elapsed() >= until:
                    self._advance(until)
                    break
                if not self._queue:
                    if self._pending_external() == 0:
                        break
                    # Frames in flight but nothing runnable: wait for
                    # the transport, bounded so a dead socket loop
                    # cannot hang the run forever.
                    if not self._wait_inbox(self.stall_timeout_s):
                        raise ProtocolError(
                            f"transport stalled: "
                            f"{self._pending_external()} message(s) in "
                            f"flight but none arrived within "
                            f"{self.stall_timeout_s}s"
                        )
                    continue
                target = self._queue[0][0]
                wall = self._elapsed()
                if target > wall:
                    timeout = target - wall
                    if until is not None:
                        timeout = min(timeout, until - wall)
                    if self._wait_inbox(timeout):
                        continue  # new work may precede the head event
                # Heap entries are (time, seq, event) on the FIFO fast
                # path and (time, rank, seq, event) with a policy;
                # first/last indexing covers both shapes.
                entry = heapq.heappop(self._queue)
                self._advance(entry[0])
                self._events_processed += 1
                entry[-1]._process()
            self._advance()
            return self._now
        finally:
            self.tracer.end(
                token, events=self._events_processed - processed_before
            )
