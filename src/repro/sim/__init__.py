"""A small generator-based discrete-event simulation kernel.

This is the substrate the whole reproduction runs on: nodes, the
network, the GDO service, and every transaction family are simulation
processes scheduled against a virtual clock measured in seconds.

The design follows the classic process-interaction style (as in SimPy):

* :class:`Environment` owns the clock and the pending-event heap.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator; the generator *yields*
  events and is resumed when they fire.  A process is itself an event
  (it fires when the generator returns), so processes can join each
  other.

Only the features the LOTEC system needs are implemented — timeouts,
one-shot events with success/failure, process joining, and ``AllOf`` —
which keeps the kernel small enough to verify exhaustively in
``tests/test_sim_*.py``.
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.engine import Environment
from repro.sim.process import Process

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "WallClockEnvironment",
]


def __getattr__(name):
    # Imported lazily: repro.sim.realtime depends on repro.util.errors
    # only, but keeping it out of the hot import path preserves the
    # kernel's zero-cost import for the common virtual-clock case.
    if name == "WallClockEnvironment":
        from repro.sim.realtime import WallClockEnvironment

        return WallClockEnvironment
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
