"""Metrics registry: counters, gauges, and histograms with labels.

The paper's evaluation reasons about *aggregates per cause* — bytes
moved to satisfy a prediction versus bytes demand-fetched after a miss,
lock operations served locally versus at the GDO home, wait time spent
behind other families.  :class:`MetricsRegistry` is the accumulation
surface for those aggregates: instruments are created on demand, keyed
by ``(name, labels)``, so instrumentation sites never pre-declare
anything and disabled runs allocate nothing.

All instruments are plain Python accumulators (no background threads,
no exposition server): a registry belongs to one simulated cluster and
is read at the end of the run by the exporters in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, object], ...]

#: Default histogram bucket upper bounds (seconds): spans microseconds
#: to minutes, the full range of simulated waits and latencies.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


@dataclass
class Counter:
    """Monotonic accumulator (events, bytes, pages)."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Instantaneous level (active transactions, queue depth)."""

    value: float = 0
    high_water: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


def percentile_from_counts(bounds: Sequence[float], counts: Sequence[int],
                           count: int, minimum: float, maximum: float,
                           q: float) -> float:
    """Percentile estimate from fixed-bucket counts.

    ``counts`` holds one entry per bound plus a trailing overflow
    bucket.  The estimate is the upper bound of the bucket containing
    the target rank, clamped into ``[minimum, maximum]`` — so a
    single-sample histogram returns the exact sample, an overflowing
    rank returns the true maximum, and no estimate can leave the
    observed range (the failure mode of a naive bucket walk on small
    counts).  Shared by :meth:`Histogram.percentile` and the SLO
    tables' snapshot-side computation (:mod:`repro.load.slo`).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be in [0, 1], got {q}")
    if count <= 0:
        return 0.0
    # Rank of the q-th percentile, 1-based (nearest-rank definition).
    target = max(1, math.ceil(q * count))
    cumulative = 0
    for bound, bucket_count in zip(bounds, counts):
        cumulative += bucket_count
        if cumulative >= target:
            return min(max(bound, minimum), maximum)
    return maximum  # rank falls in the overflow bucket


@dataclass
class Histogram:
    """Fixed-bucket distribution (lock-wait time, root latency)."""

    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.counts:
            # One count per bound plus the overflow bucket.
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one; both
        must share the same bucket bounds."""
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.counts = [
            mine + theirs
            for mine, theirs in zip(self.counts, other.counts)
        ]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate (``q`` in ``[0, 1]``).

        Empty histograms report 0.0; a single sample reports itself
        exactly (the clamp collapses every bucket bound onto it); any
        rank past the tracked bounds reports the true maximum.  With
        fewer than ``1/(1-q)`` samples the answer degenerates to the
        maximum — the correct nearest-rank value, e.g. p999 of 10
        samples is the largest one.
        """
        return percentile_from_counts(
            self.buckets, self.counts, self.count, self.min, self.max, q
        )

    def snapshot(self) -> Dict[str, object]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(bound): count
                for bound, count in zip(self.buckets, self.counts)
                if count
            },
            "overflow": self.counts[-1],
        }


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """On-demand instrument store, keyed by metric name + label set."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                buckets=buckets or DEFAULT_BUCKETS
            )
        return instrument

    # -- aggregate reads -----------------------------------------------------

    def counter_total(self, name: str, **fixed_labels) -> float:
        """Sum of one counter over every label set matching the fixed
        labels (e.g. total ``net.bytes`` across categories)."""
        wanted = set(fixed_labels.items())
        return sum(
            counter.value
            for (metric, labels), counter in self._counters.items()
            if metric == name and wanted <= set(labels)
        )

    def counter_series(self, name: str, label: str) -> Dict[object, float]:
        """Per-label-value breakdown of one counter (other labels summed)."""
        series: Dict[object, float] = {}
        for (metric, labels), counter in self._counters.items():
            if metric != name:
                continue
            for key, value in labels:
                if key == label:
                    series[value] = series.get(value, 0) + counter.value
        return series

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Registries are plain-data accumulators, so they survive
        pickling intact; the parallel bench runner uses this to
        aggregate per-run registries shipped back from worker
        processes.  Counters and histograms add; gauges sum their
        levels and keep the larger high-water mark.
        """
        for key, counter in other._counters.items():
            self._counters.setdefault(key, Counter()).inc(counter.value)
        for key, gauge in other._gauges.items():
            mine = self._gauges.setdefault(key, Gauge())
            mine.value += gauge.value
            mine.high_water = max(mine.high_water, gauge.high_water)
        for key, histogram in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = Histogram(
                    buckets=histogram.buckets
                )
            mine.merge(histogram)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict dump of every instrument, JSON-ready."""

        def render(labels: LabelKey) -> str:
            if not labels:
                return "total"
            return ",".join(f"{key}={value}" for key, value in labels)

        out: Dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), counter in sorted(self._counters.items()):
            out["counters"].setdefault(name, {})[render(labels)] = counter.value
        for (name, labels), gauge in sorted(self._gauges.items()):
            out["gauges"].setdefault(name, {})[render(labels)] = {
                "value": gauge.value, "high_water": gauge.high_water,
            }
        for (name, labels), histogram in sorted(self._histograms.items()):
            out["histograms"].setdefault(name, {})[render(labels)] = (
                histogram.snapshot()
            )
        return out
