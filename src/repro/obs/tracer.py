"""Virtual-clock tracing of every protocol decision.

A :class:`Tracer` turns the reproduction from a box that prints
end-of-run aggregates into a flight recorder: each transaction span,
lock grant, GDO forward, page gather, and network message is recorded
as a :class:`TraceEvent` stamped with the *simulation* clock, and the
same call sites feed a :class:`~repro.obs.metrics.MetricsRegistry` so
aggregates never drift from the event stream.

Instrumented code never checks "is tracing on?": it unconditionally
calls methods on whatever tracer it was wired with, and the default
:class:`NullTracer` (shared :data:`NULL_TRACER` instance) makes every
such call a no-op attribute lookup plus an empty function — cheap
enough to leave in the hottest paths (per-message accounting, lock
grants).

Two event shapes exist, mirroring Chrome's ``trace_event`` model:

* **spans** (``phase "X"``) carry a duration — transactions, lock
  waits, page gathers, message occupancy;
* **instants** (``phase "i"``) are point decisions — grants, releases,
  demand fetches, deadlock victims.

Spans are recorded at *end* time via begin/end tokens, so interleaved
simulation processes can hold concurrent open spans without any
thread-local context.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Event categories, used as the Chrome ``cat`` field and for filtering.
CAT_TXN = "txn"
CAT_LOCK = "lock"
CAT_GDO = "gdo"
CAT_TRANSFER = "transfer"
CAT_NET = "net"
CAT_SIM = "sim"
CAT_FAULT = "fault"


@dataclass
class TraceEvent:
    """One recorded event; all fields are JSON-primitive after
    :func:`sanitize` so JSONL round-trips reproduce the event exactly."""

    ts: float               # virtual seconds at the event (span start)
    name: str
    category: str
    phase: str              # "X" (complete span) or "i" (instant)
    dur: float = 0.0        # virtual seconds; 0 for instants
    node: Optional[int] = None   # NodeId.value; None = cluster-wide
    track: str = ""         # sub-node grouping (maps to a Chrome tid)
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def sanitize(value):
    """Reduce a value to JSON primitives, stably.

    Typed ids (``NodeId``/``ObjectId``/``TxnId``) use their compact
    ``repr`` (``N0``, ``O3``, ``T7/r2``); enums use their value; sets
    become sorted lists so output is deterministic.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return sanitize(value.value)
    if isinstance(value, dict):
        return {str(key): sanitize(val) for key, val in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(sanitize(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    return repr(value)


class NullTracer:
    """The disabled tracer: every hook is an explicit no-op.

    Kept free of ``__getattr__`` magic for the hot hooks so the
    disabled path stays a plain bound-method call; a fallback still
    swallows any hook added later without breaking old call sites.
    """

    enabled = False
    #: No events and no registry when disabled; :class:`Tracer`
    #: overrides both with real per-instance state.
    events: tuple = ()
    metrics = None
    clock_kind = "virtual"

    # -- generic recording -------------------------------------------------

    def instant(self, name, category, node=None, track="", **args):
        pass

    def begin(self, name, category, node=None, track="", **args):
        return None

    def end(self, token, **args):
        pass

    # -- domain hooks ------------------------------------------------------

    def txn_begin(self, txn):
        return None

    def txn_commit(self, token, txn, latency=None):
        pass

    def txn_abort(self, token, txn, reason):
        pass

    def lock_granted(self, txn, object_id, mode, scope, info=None):
        pass

    def lock_wait_begin(self, txn, object_id, mode, scope):
        return None

    def lock_wait_end(self, token, ok=True):
        pass

    def lock_inherited(self, txn, parent, object_ids):
        pass

    def lock_released(self, node, root_serial, object_ids, cause):
        pass

    def lock_prefetch(self, txn, object_id, granted, mode=None):
        pass

    def deadlock(self, victim_root, cycle):
        pass

    def gdo_register(self, object_id, home_node, page_count):
        pass

    def gdo_forward(self, node, home_node, object_id):
        pass

    def gdo_migrate(self, object_id, old_home, new_home):
        pass

    def gdo_request_forwarded(self, object_id, old_home, new_home):
        pass

    def gdo_request_latency(self, shard, seconds):
        pass

    def gdo_queue_depth(self, shard, delta):
        pass

    def transfer_begin(self, node, object_id, cause, requested):
        return None

    def transfer_end(self, token, cause, shipped, data_bytes):
        pass

    def transfer_install(self, node, object_id, pages, cause, delivered_at,
                         versions=None):
        pass

    def transfer_batch(self, node, owner, object_ids, request_bytes,
                       data_bytes, saved_messages):
        pass

    def demand_fetch(self, node, object_id, pages, shipped, data_bytes,
                     is_write, delay, versions=None):
        pass

    def prediction(self, node, object_id, predicted, wanted, shipped):
        pass

    def update_push(self, node, object_id, pages, data_bytes, replicas,
                    versions=None):
        pass

    def message(self, message, transfer_time):
        pass

    # -- fault injection ---------------------------------------------------

    def fault_drop(self, message, attempt):
        pass

    def fault_retransmit(self, message, attempt):
        pass

    def fault_duplicate(self, message):
        pass

    def fault_delay(self, message, extra_s):
        pass

    def lock_timeout(self, txn, object_id, waited_s):
        pass

    def node_crash(self, node_index, down_for_s):
        pass

    def node_recover(self, node_index):
        pass

    def crash_abort(self, node_index, root_serial):
        pass

    def crash_cache_invalidate(self, node_index, count):
        pass

    def partition_start(self, group_a, heal_after_s):
        pass

    def partition_heal(self, group_a):
        pass

    def gdo_failover(self, object_id, old_home, new_home):
        pass

    def node_rejoin(self, node_index, replayed, reclaimed, discarded):
        pass

    def __getattr__(self, _name):  # future hooks: still a no-op
        return _noop


def _noop(*_args, **_kwargs):
    return None


def _lineage(txn):
    """Ancestor serials of a transaction, parent first, root last.

    Recorded on lock and transaction events so offline consumers (the
    ``repro.check`` reference model) can evaluate Moss's
    retainer-must-be-ancestor rule from the trace alone —
    :class:`~repro.util.ids.TxnId` itself carries only serial and root.
    """
    return [ancestor.id.serial for ancestor in txn.ancestors()]


#: Shared disabled tracer — the default everywhere a tracer is optional.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Recording tracer bound to a clock.

    ``clock`` is any zero-argument callable returning the current time
    in seconds (typically ``lambda: env.now``).  ``clock_kind`` names
    the clock domain the timestamps live in — ``"virtual"`` (the DES
    clock, the default) or ``"wall"`` (real elapsed seconds, used with
    the TCP transport) — and is stamped into the JSONL trace header so
    post-hoc checkers know what ``ts`` means.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float],
                 metrics: Optional[MetricsRegistry] = None,
                 clock_kind: str = "virtual"):
        self._clock = clock
        self.clock_kind = clock_kind
        self.events: List[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._open: Dict[int, TraceEvent] = {}
        self._next_token = 0

    # -- generic recording -------------------------------------------------

    def instant(self, name, category, node=None, track="", **args):
        self.events.append(TraceEvent(
            ts=self._clock(), name=name, category=category, phase="i",
            node=None if node is None else node.value,
            track=track, args=sanitize(args),
        ))

    def begin(self, name, category, node=None, track="", **args):
        token = self._next_token
        self._next_token += 1
        self._open[token] = TraceEvent(
            ts=self._clock(), name=name, category=category, phase="X",
            node=None if node is None else node.value,
            track=track, args=sanitize(args),
        )
        return token

    def end(self, token, **args):
        event = self._open.pop(token, None)
        if event is None:
            return  # unmatched end (or end of a span begun while disabled)
        event.dur = self._clock() - event.ts
        if args:
            event.args.update(sanitize(args))
        self.events.append(event)

    # -- transactions ------------------------------------------------------

    def txn_begin(self, txn):
        self.metrics.gauge("txn.active").inc()
        if txn.is_root:
            # Spans are only recorded at their *end*, so a family
            # interrupted mid-flight (crash, stall) leaves no span —
            # this instant is the start-of-family evidence the
            # liveness checker keys on.
            self.instant(
                f"txn.start T{txn.id.root}", CAT_TXN, node=txn.node,
                track=f"family T{txn.id.root}",
                txn=txn.id, root=txn.id.root,
            )
        return self.begin(
            f"txn:{txn.label or txn.id!r}", CAT_TXN, node=txn.node,
            track=f"family T{txn.id.root}",
            lineage=_lineage(txn),
            **txn.trace_info(),
        )

    def txn_commit(self, token, txn, latency=None):
        self.metrics.gauge("txn.active").dec()
        kind = "root" if txn.is_root else "sub"
        self.metrics.counter("txn.commits", kind=kind).inc()
        if latency is not None:
            self.metrics.histogram("txn.latency_s").observe(latency)
        self.end(token, outcome="commit")

    def txn_abort(self, token, txn, reason):
        self.metrics.gauge("txn.active").dec()
        kind = "root" if txn.is_root else "sub"
        self.metrics.counter("txn.aborts", kind=kind, reason=reason).inc()
        self.end(token, outcome="abort", reason=reason)

    # -- locking -----------------------------------------------------------

    def lock_granted(self, txn, object_id, mode, scope, info=None):
        self.metrics.counter("lock.acquisitions", scope=scope).inc()
        self.instant(
            f"lock.grant {object_id!r}", CAT_LOCK, node=txn.node,
            track=f"family T{txn.id.root}",
            txn=txn.id, object=object_id, mode=mode, scope=scope,
            lineage=_lineage(txn),
            **(info or {}),
        )

    def lock_wait_begin(self, txn, object_id, mode, scope):
        self.metrics.counter("lock.waits", scope=scope).inc()
        return self.begin(
            f"lock.wait {object_id!r}", CAT_LOCK, node=txn.node,
            track=f"family T{txn.id.root}",
            txn=txn.id, object=object_id, mode=mode, scope=scope,
            lineage=_lineage(txn),
        )

    def lock_wait_end(self, token, ok=True):
        event = self._open.get(token)
        if event is not None:
            self.metrics.histogram("lock.wait_s").observe(
                self._clock() - event.ts
            )
        self.end(token, granted=ok)

    def lock_inherited(self, txn, parent, object_ids):
        self.metrics.counter("lock.inherits").inc(len(object_ids))
        self.instant(
            "lock.inherit", CAT_LOCK, node=txn.node,
            track=f"family T{txn.id.root}",
            txn=txn.id, parent=parent.id, objects=object_ids,
            lineage=_lineage(txn),
        )

    def lock_released(self, node, root_serial, object_ids, cause):
        self.metrics.counter("lock.releases", cause=cause).inc(len(object_ids))
        self.instant(
            "lock.release", CAT_LOCK, node=node,
            track=f"family T{root_serial}",
            root=root_serial, objects=object_ids, cause=cause,
        )

    def lock_prefetch(self, txn, object_id, granted, mode=None):
        outcome = "granted" if granted else "denied"
        self.metrics.counter("lock.prefetch", outcome=outcome).inc()
        self.instant(
            f"lock.prefetch {object_id!r}", CAT_LOCK, node=txn.node,
            track=f"family T{txn.id.root}",
            txn=txn.id, object=object_id, outcome=outcome, mode=mode,
            lineage=_lineage(txn),
        )

    def deadlock(self, victim_root, cycle):
        self.metrics.counter("lock.deadlocks").inc()
        self.instant(
            "lock.deadlock", CAT_LOCK,
            victim=victim_root, cycle=list(cycle),
        )

    # -- GDO ---------------------------------------------------------------

    def gdo_register(self, object_id, home_node, page_count):
        self.metrics.counter("gdo.registrations").inc()
        self.instant(
            f"gdo.register {object_id!r}", CAT_GDO, node=home_node,
            track="gdo", object=object_id, pages=page_count,
        )

    def gdo_forward(self, node, home_node, object_id):
        self.metrics.counter("gdo.forwards").inc()
        self.instant(
            f"gdo.forward {object_id!r}", CAT_GDO, node=node,
            track="gdo", object=object_id, home=home_node,
        )

    def gdo_migrate(self, object_id, old_home, new_home):
        self.metrics.counter("gdo.migrations").inc()
        self.instant(
            f"gdo.migrate {object_id!r}", CAT_GDO, node=new_home,
            track="gdo", object=object_id, old_home=old_home,
            new_home=new_home,
        )

    def gdo_request_forwarded(self, object_id, old_home, new_home):
        """A lock request (or release) raced a home move and took one
        extra forwarding hop from the stale home to the new one."""
        self.metrics.counter("gdo.request_forwards").inc()
        self.instant(
            f"gdo.request_forward {object_id!r}", CAT_GDO, node=old_home,
            track="gdo", object=object_id, old_home=old_home,
            new_home=new_home,
        )

    def gdo_request_latency(self, shard, seconds):
        """Completed global acquisition, attributed to the home shard
        that served it (the per-shard SLO tables' input)."""
        self.metrics.histogram(
            "gdo.request_latency_s", shard=shard.value
        ).observe(seconds)

    def gdo_queue_depth(self, shard, delta):
        gauge = self.metrics.gauge("gdo.queue_depth", shard=shard.value)
        if delta >= 0:
            gauge.inc(delta)
        else:
            gauge.dec(-delta)

    # -- data transfer -----------------------------------------------------

    def transfer_begin(self, node, object_id, cause, requested):
        return self.begin(
            f"transfer.gather {object_id!r}", CAT_TRANSFER, node=node,
            track=f"gather {object_id!r}",
            object=object_id, cause=cause, requested=requested,
        )

    def transfer_end(self, token, cause, shipped, data_bytes):
        self.metrics.counter("transfer.bytes", cause=cause).inc(data_bytes)
        self.metrics.counter("transfer.pages", cause=cause).inc(len(shipped))
        self.end(token, shipped=shipped, data_bytes=data_bytes)

    def transfer_install(self, node, object_id, pages, cause, delivered_at,
                         versions=None):
        """Pages entered the acquiring store — strictly after the last
        ``PAGE_DATA`` delivery event of the gather that carried them;
        ``delivered_at`` records those responses' delivery instants and
        ``versions`` the installed per-page versions (the stale-install
        invariant checker's input)."""
        self.metrics.counter("transfer.installs", cause=cause).inc()
        self.instant(
            f"transfer.install {object_id!r}", CAT_TRANSFER, node=node,
            track=f"gather {object_id!r}",
            object=object_id, pages=pages, cause=cause,
            delivered_at=delivered_at, versions=versions,
        )

    def transfer_batch(self, node, owner, object_ids, request_bytes,
                       data_bytes, saved_messages):
        """One coalesced multi-object request/response pair replaced
        ``saved_messages`` unbatched wire messages to the same owner."""
        self.metrics.counter("transfer.batches").inc()
        self.metrics.counter("transfer.messages_saved_by_batching").inc(
            saved_messages
        )
        self.instant(
            "transfer.batch", CAT_TRANSFER, node=node,
            track=f"net to N{owner.value}",
            owner=owner, objects=object_ids, request_bytes=request_bytes,
            data_bytes=data_bytes, saved_messages=saved_messages,
        )

    def demand_fetch(self, node, object_id, pages, shipped, data_bytes,
                     is_write, delay, versions=None):
        self.metrics.counter("transfer.bytes", cause="demand").inc(data_bytes)
        self.metrics.counter("transfer.pages", cause="demand").inc(len(shipped))
        self.metrics.counter("predict.demand_pages").inc(len(shipped))
        self.instant(
            f"transfer.demand {object_id!r}", CAT_TRANSFER, node=node,
            track=f"gather {object_id!r}",
            object=object_id, pages=pages, shipped=shipped,
            data_bytes=data_bytes, write=is_write, deferred_delay=delay,
            versions=versions,
        )

    def prediction(self, node, object_id, predicted, wanted, shipped):
        self.metrics.counter("predict.predicted_pages").inc(len(predicted))
        self.metrics.counter("predict.shipped_pages").inc(len(shipped))
        self.instant(
            f"transfer.prediction {object_id!r}", CAT_TRANSFER, node=node,
            track=f"gather {object_id!r}",
            object=object_id, predicted=predicted, wanted=wanted,
            shipped=shipped,
        )

    def update_push(self, node, object_id, pages, data_bytes, replicas,
                    versions=None):
        self.metrics.counter("transfer.bytes", cause="push").inc(data_bytes)
        self.metrics.counter("transfer.pages", cause="push").inc(len(pages))
        self.instant(
            f"transfer.push {object_id!r}", CAT_TRANSFER, node=node,
            track=f"gather {object_id!r}",
            object=object_id, pages=pages, data_bytes=data_bytes,
            replicas=replicas, versions=versions,
        )

    # -- network -----------------------------------------------------------

    def message(self, message, transfer_time):
        category = message.category.value
        self.metrics.counter("net.bytes", category=category).inc(
            message.size_bytes
        )
        self.metrics.counter("net.messages", category=category).inc()
        self.metrics.counter(
            "net.sent_bytes", node=message.src.value
        ).inc(message.size_bytes)
        self.metrics.counter(
            "net.received_bytes", node=message.dst.value
        ).inc(message.size_bytes)
        args = {
            "category": category, "src": message.src,
            "dst": message.dst, "bytes": message.size_bytes,
            "object": message.object_id,
        }
        if message.manifest:
            args["objects"] = [entry.object_id for entry in message.manifest]
        # Stamped with the clock, not message.send_time: send_time is
        # pinned to the first attempt, while this event records the
        # wire occupancy of the *current* attempt.
        self.events.append(TraceEvent(
            ts=self._clock(), name=f"msg:{category}", category=CAT_NET,
            phase="X", dur=transfer_time, node=message.src.value,
            track=f"net to N{message.dst.value}",
            args=sanitize(args),
        ))

    # -- fault injection ---------------------------------------------------

    def fault_drop(self, message, attempt):
        category = message.category.value
        self.metrics.counter("fault.drops", category=category).inc()
        self.instant(
            f"fault.drop msg:{category}", CAT_FAULT, node=message.src,
            track=f"net to N{message.dst.value}",
            msg_category=category, dst=message.dst, attempt=attempt,
            object=message.object_id,
        )

    def fault_retransmit(self, message, attempt):
        category = message.category.value
        self.metrics.counter("fault.retransmissions", category=category).inc()
        self.instant(
            f"fault.retransmit msg:{category}", CAT_FAULT, node=message.src,
            track=f"net to N{message.dst.value}",
            msg_category=category, dst=message.dst, attempt=attempt,
            object=message.object_id,
        )

    def fault_duplicate(self, message):
        category = message.category.value
        self.metrics.counter("fault.duplicates", category=category).inc()
        self.instant(
            f"fault.duplicate msg:{category}", CAT_FAULT, node=message.src,
            track=f"net to N{message.dst.value}",
            msg_category=category, dst=message.dst,
            object=message.object_id,
        )

    def fault_delay(self, message, extra_s):
        self.metrics.counter("fault.delay_s").inc(extra_s)
        self.instant(
            f"fault.delay msg:{message.category.value}", CAT_FAULT,
            node=message.src, track=f"net to N{message.dst.value}",
            msg_category=message.category, dst=message.dst, extra_s=extra_s,
            object=message.object_id,
        )

    def lock_timeout(self, txn, object_id, waited_s):
        self.metrics.counter("fault.lock_timeouts").inc()
        self.instant(
            f"fault.lock_timeout {object_id!r}", CAT_FAULT, node=txn.node,
            track=f"family T{txn.id.root}",
            txn=txn.id, object=object_id, waited_s=waited_s,
        )

    def node_crash(self, node_index, down_for_s):
        self.metrics.counter("fault.crashes").inc()
        self.instant(
            f"fault.node_crash N{node_index}", CAT_FAULT,
            crashed_node=node_index, down_for_s=down_for_s,
        )

    def node_recover(self, node_index):
        self.metrics.counter("fault.recoveries").inc()
        self.instant(
            f"fault.node_recover N{node_index}", CAT_FAULT,
            recovered_node=node_index,
        )

    def crash_abort(self, node_index, root_serial):
        self.metrics.counter("fault.crash_aborts").inc()
        self.instant(
            f"fault.crash_abort T{root_serial}", CAT_FAULT,
            track=f"family T{root_serial}",
            crashed_node=node_index, root=root_serial,
        )

    def crash_cache_invalidate(self, node_index, count):
        self.metrics.counter("fault.cache_invalidations").inc(count)
        self.instant(
            f"fault.cache_invalidate N{node_index}", CAT_FAULT,
            crashed_node=node_index, entries=count,
        )

    def partition_start(self, group_a, heal_after_s):
        self.metrics.counter("fault.partitions").inc()
        self.instant(
            f"fault.partition {list(group_a)}", CAT_FAULT,
            group_a=list(group_a), heal_after_s=heal_after_s,
        )

    def partition_heal(self, group_a):
        self.metrics.counter("fault.partition_heals").inc()
        self.instant(
            f"fault.partition_heal {list(group_a)}", CAT_FAULT,
            group_a=list(group_a),
        )

    def gdo_failover(self, object_id, old_home, new_home):
        self.metrics.counter("fault.failovers").inc()
        self.instant(
            f"gdo.failover {object_id!r}", CAT_GDO, node=new_home,
            object=object_id, old_home=old_home, new_home=new_home,
        )

    def node_rejoin(self, node_index, replayed, reclaimed, discarded):
        self.metrics.counter("fault.rejoins").inc()
        self.instant(
            f"fault.node_rejoin N{node_index}", CAT_FAULT,
            rejoined_node=node_index, replayed=replayed,
            reclaimed=reclaimed, discarded=discarded,
        )
