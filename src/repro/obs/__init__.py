"""repro.obs — observability for the simulated DSM.

Virtual-clock tracing (:mod:`repro.obs.tracer`), a metrics registry
(:mod:`repro.obs.metrics`), and exporters (:mod:`repro.obs.export`)
that write JSONL, Chrome ``trace_event`` JSON for Perfetto, and text
summaries.  Enable per cluster with ``ClusterConfig(trace=True)`` or
from the command line with ``python -m repro trace <scenario>``.
"""

from repro.obs.export import (
    chrome_trace,
    events_to_jsonl,
    read_jsonl,
    read_jsonl_header,
    render_summary,
    trace_header,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    sanitize,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "events_to_jsonl",
    "read_jsonl",
    "read_jsonl_header",
    "render_summary",
    "sanitize",
    "trace_header",
    "write_chrome_trace",
    "write_jsonl",
]
