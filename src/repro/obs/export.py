"""Trace and metrics exporters: JSONL, Chrome ``trace_event``, text.

Three consumers, three formats:

* **JSONL** — one :class:`~repro.obs.tracer.TraceEvent` per line, the
  lossless archival form; :func:`read_jsonl` reloads it bit-for-bit so
  analysis scripts work from files instead of live clusters.
* **Chrome trace** — the ``trace_event`` JSON object format, loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``: one
  Chrome *process* per simulated node, one *thread* per track
  (transaction family, gather lane, network link), timestamps in
  microseconds of virtual time.
* **Text summary** — the end-of-run table a terminal user reads first.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TraceEvent, Tracer

#: Chrome pid reserved for cluster-wide events (no owning node).
CLUSTER_PID = 0


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

#: Key of the optional first-line header object of a JSONL trace.
TRACE_HEADER_KEY = "trace_header"

#: Version of the JSONL trace layout (events are versioned separately
#: by their own fields; this covers the file-level framing).
TRACE_SCHEMA = 1


def trace_header(clock: str = "virtual") -> Dict[str, object]:
    """The file header recording what domain timestamps live in:
    ``"virtual"`` (simulation seconds) or ``"wall"`` (real elapsed
    seconds, traces collected over the TCP transport)."""
    return {"schema": TRACE_SCHEMA, "clock": clock}


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events, one JSON object per line."""
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True) + "\n" for event in events
    )


def write_jsonl(events: Iterable[TraceEvent], path, clock=None) -> None:
    """Write a JSONL trace; with ``clock`` set, a ``trace_header``
    first line records the clock domain (event lines are unchanged, so
    header-unaware consumers that skip unknown shapes still work)."""
    with open(path, "w") as handle:
        if clock is not None:
            handle.write(json.dumps(
                {TRACE_HEADER_KEY: trace_header(clock)}, sort_keys=True
            ) + "\n")
        handle.write(events_to_jsonl(events))


def read_jsonl(path) -> List[TraceEvent]:
    """Inverse of :func:`write_jsonl`: reload the exact event objects
    (the optional header line is skipped; see :func:`read_jsonl_header`)."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if TRACE_HEADER_KEY in record:
                continue
            events.append(TraceEvent(**record))
    return events


def read_jsonl_header(path) -> Dict[str, object]:
    """The trace's header object; legacy headerless files (and any
    pre-header consumers' output) read as a virtual-clock trace."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            header = record.get(TRACE_HEADER_KEY)
            return header if header is not None else trace_header("virtual")
    return trace_header("virtual")


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def _seconds_to_us(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Convert events to the Chrome ``trace_event`` object format.

    Nodes become Chrome processes (pid = node value + 1; pid 0 is the
    cluster-wide lane) and tracks become threads, with ``M`` metadata
    records naming both so Perfetto's timeline is self-describing.
    """
    trace_events: List[Dict[str, object]] = []
    tids: Dict[tuple, int] = {}
    named_pids: Dict[int, str] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track or "events"},
            })
        return tid

    def pid_for(node) -> int:
        pid = CLUSTER_PID if node is None else node + 1
        if pid not in named_pids:
            named_pids[pid] = "cluster" if node is None else f"node N{node}"
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": named_pids[pid]},
            })
        return pid

    for event in events:
        pid = pid_for(event.node)
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": _seconds_to_us(event.ts),
            "pid": pid,
            "tid": tid_for(pid, event.track),
            "args": event.args,
        }
        if event.phase == "X":
            record["dur"] = _seconds_to_us(event.dur)
        elif event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(events), handle)


# ---------------------------------------------------------------------------
# Text summary
# ---------------------------------------------------------------------------

def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value):,}"


def render_summary(tracer: Tracer) -> str:
    """End-of-run metrics table (one tracer = one cluster run)."""
    metrics: MetricsRegistry = tracer.metrics
    lines: List[str] = []

    def section(title: str) -> None:
        if lines:
            lines.append("")
        lines.append(title)
        lines.append("-" * len(title))

    def row(label: str, value) -> None:
        lines.append(f"  {label:<28} {value}")

    section("transactions")
    row("root commits", _fmt(metrics.counter_total("txn.commits", kind="root")))
    row("sub commits", _fmt(metrics.counter_total("txn.commits", kind="sub")))
    for reason, count in sorted(
        metrics.counter_series("txn.aborts", "reason").items()
    ):
        row(f"aborts ({reason})", _fmt(count))
    latency = metrics.histogram("txn.latency_s")
    if latency.count:
        row("mean root latency (us)", _fmt(latency.mean * 1e6))
    row("peak concurrent txns", _fmt(metrics.gauge("txn.active").high_water))

    section("locking")
    for scope, count in sorted(
        metrics.counter_series("lock.acquisitions", "scope").items()
    ):
        row(f"acquisitions ({scope})", _fmt(count))
    row("waits", _fmt(metrics.counter_total("lock.waits")))
    wait = metrics.histogram("lock.wait_s")
    if wait.count:
        row("mean wait (us)", _fmt(wait.mean * 1e6))
        row("max wait (us)", _fmt(wait.max * 1e6))
    row("inherited locks", _fmt(metrics.counter_total("lock.inherits")))
    row("deadlock victims", _fmt(metrics.counter_total("lock.deadlocks")))
    row("gdo forwards", _fmt(metrics.counter_total("gdo.forwards")))

    section("network")
    row("total bytes", _fmt(metrics.counter_total("net.bytes")))
    row("total messages", _fmt(metrics.counter_total("net.messages")))
    for category, count in sorted(
        metrics.counter_series("net.bytes", "category").items()
    ):
        row(f"bytes ({category})", _fmt(count))

    section("data movement by cause")
    for cause, count in sorted(
        metrics.counter_series("transfer.bytes", "cause").items()
    ):
        pages = metrics.counter_total("transfer.pages", cause=cause)
        row(f"{cause}", f"{_fmt(count)} bytes / {_fmt(pages)} pages")
    predicted = metrics.counter_total("predict.predicted_pages")
    shipped = metrics.counter_total("predict.shipped_pages")
    demand = metrics.counter_total("predict.demand_pages")
    row("predicted pages", _fmt(predicted))
    row("shipped at acquisition", _fmt(shipped))
    row("demand-fetched (misses)", _fmt(demand))
    if shipped + demand:
        coverage = 1.0 - demand / (shipped + demand)
        row("prediction coverage", f"{coverage:.1%}")

    lines.append("")
    lines.append(f"trace events recorded: {len(tracer.events):,}")
    return "\n".join(lines)
