"""Instrumented ``self``: routes attribute access through the runtime.

When a transactional method runs, its ``self`` is an
:class:`InstrumentedSelf` bound to the executing transaction's context.
Every read and write flows through the context, which (a) performs the
access against the node's local store, (b) records actual read/write
sets (used to validate prediction conservatism), (c) appends undo
records for writes, and (d) triggers LOTEC demand fetches for pages the
prediction missed.

Attribute values must be treated as immutable: update by assignment
(``self.x = v``, ``self.a[i] = v``), never by in-place container
mutation (``self.a.append(...)``) — in-place mutation would bypass both
undo logging and dirty-page tracking, just as an unlogged store would
in a real DSM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.context import TxnContext
    from repro.objects.registry import ObjectMeta


class ArrayView:
    """Element-wise view of an array attribute within a transaction."""

    __slots__ = ("_ctx", "_meta", "_name", "_count")

    def __init__(self, ctx: "TxnContext", meta: "ObjectMeta", name: str, count: int):
        self._ctx = ctx
        self._meta = meta
        self._name = name
        self._count = count

    def __len__(self) -> int:
        return self._count

    def _check_index(self, index: int) -> int:
        if not isinstance(index, int):
            raise TypeError(
                f"array attribute {self._name!r} requires integer indices, "
                f"got {type(index).__name__}"
            )
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(
                f"index {index} out of range for {self._name!r} "
                f"(count={self._count})"
            )
        return index

    def __getitem__(self, index: int) -> object:
        index = self._check_index(index)
        return self._ctx.read_slot(self._meta, (self._name, index))

    def __setitem__(self, index: int, value: object) -> None:
        index = self._check_index(index)
        self._ctx.write_slot(self._meta, (self._name, index), value)

    def __iter__(self):
        for index in range(self._count):
            yield self[index]

    def __repr__(self) -> str:
        return f"<ArrayView {self._meta.object_id!r}.{self._name}[{self._count}]>"


class InstrumentedSelf:
    """The ``self`` seen by method bodies: a tracked facade over one
    shared object's slots at the executing node."""

    __slots__ = ("_ctx", "_meta")

    def __init__(self, ctx: "TxnContext", meta: "ObjectMeta"):
        object.__setattr__(self, "_ctx", ctx)
        object.__setattr__(self, "_meta", meta)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        meta = object.__getattribute__(self, "_meta")
        ctx = object.__getattribute__(self, "_ctx")
        layout = meta.layout
        if not layout.has_attribute(name):
            spec = meta.schema.methods.get(name)
            if spec is not None:
                raise ConfigurationError(
                    f"direct call of method {name!r} on shared self; invoke "
                    f"it as a sub-transaction: yield ctx.invoke(handle, {name!r})"
                )
            raise AttributeError(
                f"shared object {meta.object_id!r} ({meta.schema.name}) has "
                f"no attribute {name!r}"
            )
        attr_spec = layout.attribute(name)
        if attr_spec.is_array:
            return ArrayView(ctx, meta, name, attr_spec.count)
        return ctx.read_slot(meta, (name, 0))

    def __setattr__(self, name: str, value: object) -> None:
        meta = object.__getattribute__(self, "_meta")
        ctx = object.__getattribute__(self, "_ctx")
        layout = meta.layout
        if not layout.has_attribute(name):
            raise AttributeError(
                f"shared object {meta.object_id!r} ({meta.schema.name}) has "
                f"no attribute {name!r}; shared classes are closed — declare "
                f"new attributes with Attr/Array"
            )
        if layout.attribute(name).is_array:
            raise ConfigurationError(
                f"cannot assign whole array {name!r}; assign elements "
                f"(self.{name}[i] = value)"
            )
        ctx.write_slot(meta, (name, 0), value)

    def __repr__(self) -> str:
        meta = object.__getattribute__(self, "_meta")
        return f"<shared {meta.schema.name} {meta.object_id!r}>"
