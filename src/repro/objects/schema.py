"""Shared-class declarations and compile-time schema construction."""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.analysis import AccessSets, analyze_invocations, analyze_method
from repro.memory.layout import AttributeSpec, ObjectLayout
from repro.util.errors import ConfigurationError


class Attr:
    """Declares a scalar attribute with an on-page size in bytes."""

    def __init__(self, size: int = 8, default: object = 0):
        if size <= 0:
            raise ConfigurationError("Attr size must be positive")
        self.size = size
        self.default = default


class Array(Attr):
    """Declares a fixed-length array attribute.

    Elements are addressed as ``self.name[i]``; each element occupies
    ``size`` bytes, so a large array spans many pages and element
    writes dirty only the pages holding that element — the case where
    page-granular transfer shines.
    """

    def __init__(self, size: int, count: int, default: object = 0):
        super().__init__(size=size, default=default)
        if count <= 1:
            raise ConfigurationError("Array count must be > 1 (use Attr for scalars)")
        self.count = count


def method(func: Optional[Callable] = None, *,
           reads: Optional[Iterable[str]] = None,
           writes: Optional[Iterable[str]] = None) -> Callable:
    """Marks a function as a transactional method.

    With no arguments the access sets come from static analysis; the
    optional ``reads`` / ``writes`` lists *override* the corresponding
    analyzed set (modelling a sharper compiler, or — deliberately — an
    unsound one, which exercises LOTEC's demand-fetch repair path).
    """

    def mark(f: Callable) -> Callable:
        f.__repro_method__ = {
            "reads": frozenset(reads) if reads is not None else None,
            "writes": frozenset(writes) if writes is not None else None,
        }
        return f

    if func is not None:
        return mark(func)
    return mark


@dataclass(frozen=True)
class MethodSpec:
    """One transactional method, with its predicted access sets.

    ``access`` is the final (post-override) attribute access sets with
    the ALL sentinel already resolved against the class's attributes.
    ``analyzed`` preserves the raw static-analysis result for the
    prediction ablation and for the conservatism test suite.
    ``invoked_methods`` is the §5.1 invocation prediction: literal
    method names this method may invoke as sub-transactions (or the
    UNKNOWN sentinel); drives the optimistic prefetcher.
    """

    name: str
    func: Callable
    is_generator: bool
    access: AccessSets
    analyzed: AccessSets
    invoked_methods: object = None

    @property
    def may_invoke(self) -> bool:
        """False only when analysis proved this method invokes nothing."""
        from repro.analysis import may_invoke as _may_invoke

        if not self.is_generator:
            return False
        if self.invoked_methods is None:
            return True
        return _may_invoke(self.invoked_methods)

    @property
    def is_update(self) -> bool:
        """True when the method may write: it takes a Write lock."""
        return bool(self.access.writes)


class ClassSchema:
    """Everything the runtime needs to know about one shared class."""

    def __init__(self, name: str, attributes: Tuple[AttributeSpec, ...],
                 methods: Dict[str, MethodSpec]):
        self.name = name
        self.attributes = attributes
        self.methods = methods
        self._attr_names = frozenset(spec.name for spec in attributes)

    def attribute_names(self) -> frozenset:
        return self._attr_names

    def method_spec(self, name: str) -> MethodSpec:
        try:
            return self.methods[name]
        except KeyError:
            raise KeyError(
                f"class {self.name!r} has no method {name!r}; "
                f"have {sorted(self.methods)}"
            ) from None

    def make_layout(self, page_size: int) -> ObjectLayout:
        return ObjectLayout(self.attributes, page_size=page_size)

    def __repr__(self) -> str:
        return (
            f"<ClassSchema {self.name}: {len(self.attributes)} attrs, "
            f"{len(self.methods)} methods>"
        )


def build_schema(cls: type) -> ClassSchema:
    """Extract attribute specs and analyzed methods from a class body."""
    attributes = []
    raw_methods: Dict[str, Callable] = {}
    for name, value in vars(cls).items():
        if isinstance(value, Attr):
            count = value.count if isinstance(value, Array) else 1
            attributes.append(
                AttributeSpec(name=name, size_bytes=value.size,
                              count=count, default=value.default)
            )
        elif callable(value) and hasattr(value, "__repro_method__"):
            raw_methods[name] = value
    if not attributes:
        raise ConfigurationError(
            f"shared class {cls.__name__} declares no Attr/Array attributes"
        )
    if not raw_methods:
        raise ConfigurationError(
            f"shared class {cls.__name__} declares no @method methods"
        )
    attr_names = frozenset(spec.name for spec in attributes)
    methods: Dict[str, MethodSpec] = {}
    for name, func in raw_methods.items():
        analyzed = analyze_method(func, class_methods=raw_methods)
        # Method names picked up as "reads" by the analyzer (self.m(...)
        # also loads the name m) are not data attributes; resolve()
        # intersects with the real attribute set.
        analyzed = analyzed.resolve(attr_names)
        overrides = func.__repro_method__
        reads = overrides["reads"] if overrides["reads"] is not None else analyzed.reads
        writes = (
            overrides["writes"] if overrides["writes"] is not None else analyzed.writes
        )
        for declared, label in ((reads, "reads"), (writes, "writes")):
            unknown = frozenset(declared) - attr_names
            if unknown:
                raise ConfigurationError(
                    f"{cls.__name__}.{name}: {label} annotation names unknown "
                    f"attributes {sorted(unknown)}"
                )
        methods[name] = MethodSpec(
            name=name,
            func=func,
            is_generator=inspect.isgeneratorfunction(func),
            access=AccessSets(reads=frozenset(reads), writes=frozenset(writes)),
            analyzed=analyzed,
            invoked_methods=analyze_invocations(func),
        )
    return ClassSchema(name=cls.__name__, attributes=tuple(attributes),
                       methods=methods)


def shared_class(cls: type) -> type:
    """Class decorator: compile the class into a :class:`ClassSchema`.

    The schema is attached as ``cls.__repro_schema__``; the class itself
    is returned unchanged so it still reads naturally in user code and
    in tests.
    """
    cls.__repro_schema__ = build_schema(cls)
    return cls


def schema_of(cls_or_schema: Union[type, ClassSchema]) -> ClassSchema:
    """Accept either a decorated class or a schema built by hand."""
    if isinstance(cls_or_schema, ClassSchema):
        return cls_or_schema
    schema = getattr(cls_or_schema, "__repro_schema__", None)
    if schema is None:
        raise ConfigurationError(
            f"{cls_or_schema!r} is not a shared class (missing @shared_class)"
        )
    return schema
