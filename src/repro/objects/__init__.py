"""The shared-object model: how users declare transactional classes.

A shared class declares sized attributes and transactional methods::

    @shared_class
    class Account:
        balance = Attr(size=8, default=0)
        history = Array(size=16, count=256, default=None)

        @method
        def deposit(self, ctx, amount):
            self.balance += amount

        @method
        def audit(self, ctx, other):
            total = self.balance
            total += yield ctx.invoke(other, "balance_of")
            return total

Every method invocation is a [sub-]transaction (§3.3).  The
``@shared_class`` decorator plays the paper's compiler role: it runs
attribute access analysis on each method, records the class's memory
layout parameters, and arranges for lock acquire/release to be inserted
around each invocation automatically (§3.5) — the user never writes a
synchronization operation.
"""

from repro.objects.schema import (
    Attr,
    Array,
    ClassSchema,
    MethodSpec,
    method,
    shared_class,
)
from repro.objects.proxy import ArrayView, InstrumentedSelf
from repro.objects.registry import ObjectHandle, ObjectMeta, ObjectRegistry

__all__ = [
    "Attr",
    "Array",
    "ClassSchema",
    "MethodSpec",
    "method",
    "shared_class",
    "ArrayView",
    "InstrumentedSelf",
    "ObjectHandle",
    "ObjectMeta",
    "ObjectRegistry",
]
