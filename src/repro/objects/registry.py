"""Object registry: cluster-wide metadata for every shared object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.memory.layout import ObjectLayout
from repro.objects.schema import ClassSchema
from repro.util.errors import ConfigurationError
from repro.util.ids import NodeId, ObjectId


@dataclass(frozen=True)
class ObjectMeta:
    """Immutable identity of one shared object.

    ``home_node`` is the GDO partition that owns the object's directory
    entry (not where the data lives — pages migrate freely).
    """

    object_id: ObjectId
    schema: ClassSchema
    layout: ObjectLayout
    home_node: NodeId
    creator_node: NodeId

    @property
    def page_count(self) -> int:
        return self.layout.page_count


class ObjectHandle:
    """The user-facing reference to a shared object.

    Handles are plain values: they can be stored in other objects'
    attributes and passed as method arguments across nodes (they cost
    8 bytes on the wire, like any scalar).
    """

    __slots__ = ("meta",)

    def __init__(self, meta: ObjectMeta):
        self.meta = meta

    @property
    def object_id(self) -> ObjectId:
        return self.meta.object_id

    @property
    def class_name(self) -> str:
        return self.meta.schema.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjectHandle) and other.object_id == self.object_id

    def __hash__(self) -> int:
        return hash(self.object_id)

    def __repr__(self) -> str:
        return f"<{self.class_name} {self.object_id!r}>"


class ObjectRegistry:
    """Maps object ids to metadata; shared by every node in a cluster.

    A real system would replicate this through the GDO; here it is a
    process-local table (the GDO still charges messages for directory
    *lock* and *page-map* traffic, which is what the paper measures —
    class metadata distribution is a one-time cost it does not model).
    """

    def __init__(self) -> None:
        self._metas: Dict[ObjectId, ObjectMeta] = {}

    def register(self, meta: ObjectMeta) -> ObjectHandle:
        if meta.object_id in self._metas:
            raise ConfigurationError(f"object {meta.object_id!r} already registered")
        self._metas[meta.object_id] = meta
        return ObjectHandle(meta)

    def meta(self, object_id: ObjectId) -> ObjectMeta:
        try:
            return self._metas[object_id]
        except KeyError:
            raise KeyError(f"unknown object {object_id!r}") from None

    def handle(self, object_id: ObjectId) -> ObjectHandle:
        return ObjectHandle(self.meta(object_id))

    def all_objects(self) -> Tuple[ObjectId, ...]:
        return tuple(self._metas)

    def __len__(self) -> int:
        return len(self._metas)

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._metas
