"""Exception hierarchy used across the LOTEC reproduction.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the interesting cases (deadlock, transaction abort,
recursive invocation) by subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class ProtocolError(ReproError):
    """An internal protocol invariant was violated.

    Raised when the lock manager, directory, or consistency protocol
    observes a state that the algorithms of the paper forbid.  These
    indicate bugs (or deliberately injected faults in tests), never
    user error.
    """


class TransactionAborted(ReproError):
    """A transaction was aborted and its effects rolled back.

    Attributes:
        txn_id: identifier of the aborted transaction.
        reason: short machine-readable reason string, e.g. ``"deadlock"``,
            ``"user"``, ``"parent-abort"``.
    """

    def __init__(self, txn_id, reason: str = "user"):
        super().__init__(f"transaction {txn_id} aborted ({reason})")
        self.txn_id = txn_id
        self.reason = reason


class DeadlockError(TransactionAborted):
    """The deadlock detector chose this transaction as its victim.

    The paper's algorithms do not address inter-family deadlock; this
    reproduction adds waits-for-graph detection at the GDO (see
    DESIGN.md §2, "Substitutions").  The victim's family is aborted and
    may be retried by the caller.
    """

    def __init__(self, txn_id, cycle=None):
        TransactionAborted.__init__(self, txn_id, reason="deadlock")
        self.cycle = list(cycle) if cycle is not None else []


class LockTimeoutError(TransactionAborted):
    """A lock wait exceeded the fault plan's ``lock_wait_timeout_s``.

    Timeouts are the fallback liveness mechanism when fault injection
    is active: a wait that outlives the bound is treated like a
    deadlock victim — the family aborts, releases everything it holds,
    and the executor retries it with capped exponential backoff.
    """

    def __init__(self, txn_id, object_id=None, waited_s: float = 0.0):
        TransactionAborted.__init__(self, txn_id, reason="lock-timeout")
        self.object_id = object_id
        self.waited_s = waited_s


class NodeCrashError(TransactionAborted):
    """The transaction's host node crashed while the family was in flight.

    Raised by interrupting the family's root process (and by prefetch
    helpers that notice their family died).  Unlike deadlock and
    lock-timeout aborts this is *not* retried: the submitting client
    lived on the crashed node too.
    """

    def __init__(self, txn_id, node=None):
        TransactionAborted.__init__(self, txn_id, reason="node-crash")
        self.node = node


class RecursiveInvocationError(ReproError):
    """A method invoked (directly or indirectly) an object whose lock is
    *held* (not merely retained) by one of its ancestors.

    Section 3.4 of the paper precludes mutually recursive invocations and
    verifies compliance at run time; this is the corresponding error.
    """

    def __init__(self, txn_id, object_id):
        super().__init__(
            f"transaction {txn_id} recursively invoked object {object_id} "
            f"whose lock is held by an ancestor"
        )
        self.txn_id = txn_id
        self.object_id = object_id
