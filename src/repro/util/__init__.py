"""Shared utilities: identifiers, errors, seeded RNG helpers, validation."""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    DeadlockError,
    TransactionAborted,
    RecursiveInvocationError,
    ProtocolError,
)
from repro.util.ids import IdAllocator, NodeId, ObjectId, PageId, TxnId
from repro.util.rng import SeededRNG, derive_seed

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DeadlockError",
    "TransactionAborted",
    "RecursiveInvocationError",
    "ProtocolError",
    "IdAllocator",
    "NodeId",
    "ObjectId",
    "PageId",
    "TxnId",
    "SeededRNG",
    "derive_seed",
]
