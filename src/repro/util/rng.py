"""Deterministic random-number utilities.

Every stochastic component (workload generator, scheduler jitter,
deadlock victim tie-breaks) draws from its own :class:`SeededRNG`
derived from the experiment's master seed, so that

* a whole experiment is reproducible from one integer, and
* adding randomness to one component does not perturb the stream seen
  by another (independent sub-streams via :func:`derive_seed`).
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master: int, *labels: object) -> int:
    """Derive a stable 64-bit sub-seed from ``master`` and a label path.

    Uses BLAKE2b over the textual labels so that sub-streams are
    independent of each other and stable across Python versions (unlike
    ``hash()``, which is salted per process).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(master).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "big")


class SeededRNG:
    """A thin wrapper over :class:`random.Random` with domain helpers."""

    def __init__(self, seed: int):
        self.seed = seed
        self._random = random.Random(seed)

    def derive(self, *labels: object) -> "SeededRNG":
        """Create an independent child stream for a named component."""
        return SeededRNG(derive_seed(self.seed, *labels))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive on both ends."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self._random.choices(items, weights=weights, k=1)[0]

    def zipf_index(self, n: int, skew: float) -> int:
        """Draw an index in [0, n) with Zipf-like skew.

        ``skew == 0`` is uniform; larger values concentrate probability
        on low indices.  Used to model the paper's "high" vs "moderate"
        contention: high contention = strong skew onto few hot objects.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if skew <= 0:
            return self._random.randrange(n)
        weights = [1.0 / (rank + 1) ** skew for rank in range(n)]
        return self._random.choices(range(n), weights=weights, k=1)[0]

    def maybe(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._random.random() < probability

    def pareto_int(self, minimum: int, alpha: float = 1.5,
                   maximum: Optional[int] = None) -> int:
        """Heavy-tailed integer >= minimum, optionally capped."""
        value = int(minimum * self._random.paretovariate(alpha))
        if maximum is not None:
            value = min(value, maximum)
        return max(value, minimum)
