"""Capped exponential backoff, shared by every retry loop.

One formula serves the deadlock/timeout retry loop in the executor,
the network retransmission timers, and the GDO failover reroute path:
``base * 2**min(attempt, cap)``, optionally jittered into
``[0.5x, 1.5x)`` by a seeded RNG stream.  Keeping the formula in one
place means "how aggressively does this system retry" is a single
tunable fact rather than three drifting copies.
"""

from typing import Optional

__all__ = ["BACKOFF_CAP", "backoff_delay"]

#: Doubling stops after this many attempts (2**6 = 64x base).  Beyond
#: it the delay is constant: retries stay live without the wait growing
#: past any fault window the presets schedule.
BACKOFF_CAP = 6


def backoff_delay(base_s: float, attempt: int, cap: int = BACKOFF_CAP,
                  rng: Optional[object] = None) -> float:
    """Delay before retry number ``attempt`` (0-based).

    With ``rng`` (anything exposing ``random() -> [0, 1)``), the delay
    is jittered over ``[0.5x, 1.5x)`` to de-synchronize competing
    retriers; without it the delay is exact, which the network layer
    relies on for cross-backend accounting parity.
    """
    delay = base_s * (2 ** min(attempt, cap))
    if rng is not None:
        delay *= 0.5 + rng.random()
    return delay
