"""Typed identifiers for nodes, objects, pages, and transactions.

The paper's data structures key on ``<transaction id, node id>`` pairs
(GDO holder lists) and ``(object, page)`` pairs (page maps).  We give
each of these a small, hashable, ordered NewType-style wrapper so that
mixing them up is caught early and ``repr`` output in logs and test
failures is self-describing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class NodeId:
    """Identifier of a node (site) in the simulated cluster."""

    value: int

    def __repr__(self) -> str:
        return f"N{self.value}"


@dataclass(frozen=True, order=True)
class ObjectId:
    """Identifier of a shared object registered in the GDO."""

    value: int

    def __repr__(self) -> str:
        return f"O{self.value}"


@dataclass(frozen=True, order=True)
class PageId:
    """Identifier of one page of one object.

    Pages are object-relative: ``PageId(ObjectId(3), 2)`` is the third
    page of object O3.  The paper tracks per-object page maps in the GDO,
    so pages never need a global flat namespace.
    """

    object_id: ObjectId
    index: int

    def __repr__(self) -> str:
        return f"{self.object_id!r}.p{self.index}"


@dataclass(frozen=True, order=True)
class TxnId:
    """Identifier of a [sub-]transaction.

    ``root`` is the identifier of the family's root transaction so that
    family membership tests (rule 1 of §4.1) are O(1); ``serial`` orders
    transactions globally and doubles as the age used by the deadlock
    detector's youngest-victim policy.
    """

    serial: int
    root: int

    @property
    def is_root(self) -> bool:
        return self.serial == self.root

    def same_family(self, other: "TxnId") -> bool:
        return self.root == other.root

    def __repr__(self) -> str:
        if self.is_root:
            return f"T{self.serial}"
        return f"T{self.serial}/r{self.root}"


@dataclass
class IdAllocator:
    """Monotonic allocator for each identifier kind.

    A single allocator is owned by the :class:`repro.runtime.Cluster`
    so identifiers are unique cluster-wide and deterministic for a given
    run (no global mutable state: two clusters never share counters).
    """

    _nodes: itertools.count = field(default_factory=itertools.count)
    _objects: itertools.count = field(default_factory=itertools.count)
    _txns: itertools.count = field(default_factory=itertools.count)

    def next_node(self) -> NodeId:
        return NodeId(next(self._nodes))

    def next_object(self) -> ObjectId:
        return ObjectId(next(self._objects))

    def next_root_txn(self) -> TxnId:
        serial = next(self._txns)
        return TxnId(serial=serial, root=serial)

    def next_sub_txn(self, parent: TxnId) -> TxnId:
        return TxnId(serial=next(self._txns), root=parent.root)
