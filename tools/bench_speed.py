#!/usr/bin/env python
"""Measure raw DES engine speed (events/s) on the fig2 workload.

The committed envelope (``benchmarks/baselines/BENCH_SPEED.json``) is
the repo's speed trajectory: it records the pre-overhaul measurement
(``pre_pr``), the current committed measurement (``baseline``), and the
machine calibration that makes the two comparable across hosts.  CI
re-measures on every build (``tools/check_baselines.py --only speed``)
and fails on a >15% normalized events/s regression, the same way the
message-count gates lock in the wire-budget claims.

Speed never buys a behavior change: every invocation also re-runs the
traced golden point (scale 0.1, seed 11 — the same point
``tests/test_trace_golden.py`` pins) and cross-checks the trace SHA-256
against the digest recorded in the envelope, so an "optimization" that
perturbs the event schedule fails here before it can be committed.

Usage:
    PYTHONPATH=src python tools/bench_speed.py                 # measure + check
    PYTHONPATH=src python tools/bench_speed.py --out X.json    # also write envelope
    PYTHONPATH=src python tools/bench_speed.py --update        # rewrite baseline
    PYTHONPATH=src python tools/bench_speed.py --record-pre-pr # pin pre_pr field
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "baselines", "BENCH_SPEED.json",
)

SCHEMA = 1

#: The measurement point: one lotec run of the fig2 scenario.  The
#: timing runs are untraced (the engine's production configuration);
#: the behavior cross-check reruns the traced golden point below.
POINT = {
    "scenario": "medium-high",
    "protocol": "lotec",
    "seed": 11,
    "num_nodes": 4,
    "scale": 1.0,
}

#: Traced golden point — must match tests/test_trace_golden.py.
TRACE_POINT = {"scale": 0.1, "seed": 11}


def _build(scale: float, seed: int, trace: bool):
    from repro.runtime.cluster import Cluster
    from repro.runtime.config import ClusterConfig
    from repro.workload.generator import generate_workload
    from repro.workload.params import SCENARIOS

    params = SCENARIOS[POINT["scenario"]].scaled(scale)
    workload = generate_workload(params, seed=seed)
    cluster = Cluster(ClusterConfig(
        num_nodes=POINT["num_nodes"], protocol=POINT["protocol"], seed=seed,
        audit_accesses=False, trace=trace,
    ))
    return cluster, workload


def calibrate(iterations: int = 2_000_000) -> float:
    """Ops/s of a fixed pure-Python loop: a rough single-core speed
    index for the host, so committed events/s numbers transfer between
    machines.  The gate compares *normalized* events/s (events per
    calibration op), not raw wall clock."""
    best = 0.0
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(iterations):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = max(best, iterations / elapsed)
    return best


def measure_speed(scale: float, repeats: int):
    """Best-of-``repeats`` untraced fig2 run; returns the measurement
    dict (events, wall_s, events_per_s of the fastest repeat)."""
    from repro.workload.runner import run_workload

    best = None
    for _ in range(repeats):
        cluster, workload = _build(scale, POINT["seed"], trace=False)
        start = time.perf_counter()
        run_workload(cluster, workload)
        wall = time.perf_counter() - start
        events = cluster.env.events_processed
        if best is None or wall < best["wall_s"]:
            best = {
                "events": events,
                "wall_s": round(wall, 4),
                "events_per_s": round(events / wall, 1),
            }
    return best


def measure_trace_digest():
    """SHA-256 of the traced golden-point run (behavior fingerprint)."""
    from repro.obs.export import events_to_jsonl
    from repro.workload.runner import run_workload

    cluster, workload = _build(TRACE_POINT["scale"], TRACE_POINT["seed"],
                               trace=True)
    run = run_workload(cluster, workload)
    jsonl = events_to_jsonl(cluster.tracer.events)
    return {
        "sha256": hashlib.sha256(jsonl.encode("utf-8")).hexdigest(),
        "events": len(cluster.tracer.events),
        "commits": run.committed,
        **TRACE_POINT,
    }


def load_baseline():
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_baseline(envelope) -> None:
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=POINT["scale"],
                        help="workload scale for the timing runs "
                             "(the committed baseline is pinned at its "
                             "own scale; comparisons require equality)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; the fastest one is kept")
    parser.add_argument("--out", help="write the measurement envelope here")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline measurement")
    parser.add_argument("--record-pre-pr", action="store_true",
                        help="pin this measurement as the envelope's "
                             "pre-overhaul reference point")
    parser.add_argument("--skip-trace-check", action="store_true",
                        help="skip the golden-trace byte-identity check "
                             "(first capture only)")
    args = parser.parse_args(argv)

    cal = calibrate()
    speed = measure_speed(args.scale, args.repeats)
    speed["scale"] = args.scale
    speed["normalized"] = round(speed["events_per_s"] / cal, 6)
    print(f"fig2 @ scale {args.scale}: {speed['events']} events in "
          f"{speed['wall_s']}s = {speed['events_per_s']} events/s "
          f"(calibration {cal:,.0f} ops/s, normalized {speed['normalized']})")

    envelope = load_baseline() or {
        "schema": SCHEMA, "benchmark": "speed-fig2", "point": dict(POINT),
        "min_speedup_vs_pre_pr": 3.0, "max_regression": 0.15,
    }

    trace = measure_trace_digest()
    expected = envelope.get("trace_check", {}).get("sha256")
    if expected is None or args.skip_trace_check:
        envelope["trace_check"] = trace
        print(f"trace fingerprint captured: {trace['sha256'][:16]}… "
              f"({trace['events']} events, {trace['commits']} commits)")
    elif trace["sha256"] != expected:
        print(f"BEHAVIOR CHANGE: golden-point trace digest "
              f"{trace['sha256']} != committed {expected}; the engine no "
              f"longer produces a byte-identical schedule.", file=sys.stderr)
        return 1
    else:
        print(f"trace byte-identity ok: {trace['sha256'][:16]}… "
              f"({trace['events']} events, {trace['commits']} commits)")

    if args.record_pre_pr:
        envelope["pre_pr"] = speed
        envelope["calibration_ops_per_s"] = round(cal, 1)
        write_baseline(envelope)
        print(f"pre-PR measurement pinned: {BASELINE_PATH}")
        return 0

    if args.update:
        envelope["baseline"] = speed
        envelope["calibration_ops_per_s"] = round(cal, 1)
        pre = envelope.get("pre_pr")
        if pre and pre.get("normalized"):
            envelope["speedup_vs_pre_pr"] = round(
                speed["normalized"] / pre["normalized"], 2
            )
            print(f"speedup vs pre-PR: {envelope['speedup_vs_pre_pr']}x "
                  f"(normalized)")
        write_baseline(envelope)
        print(f"baseline updated: {BASELINE_PATH}")

    if args.out:
        measurement = {
            "schema": SCHEMA, "benchmark": "speed-fig2",
            "point": dict(POINT, scale=args.scale),
            "measured": speed, "calibration_ops_per_s": round(cal, 1),
            "trace_check": trace,
        }
        out_dir = os.path.dirname(os.path.abspath(args.out))
        os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(measurement, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"measurement written: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
