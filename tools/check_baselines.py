#!/usr/bin/env python
"""Unified baseline gate: wire budgets, locality claim, engine speed.

One entry point for every committed benchmark envelope, so CI and
developers run the same command:

* ``--only messages`` — per-protocol ``PAGE_REQUEST`` / total message
  counts vs ``benchmarks/baselines/claims_messages.json``.  Any
  increase fails.
* ``--only locality`` — remote directory traffic, static vs adaptive
  GDO migration, vs ``benchmarks/baselines/claims_locality.json``
  (including the ``min_reduction`` headline floor).
* ``--only speed`` — normalized engine events/s on the fig2 point vs
  ``benchmarks/baselines/BENCH_SPEED.json``.  Fails on a >15%
  normalized regression against the committed baseline, if the
  committed ≥3x speedup over the pre-overhaul measurement no longer
  holds, or if the traced golden-point digest changed (an
  "optimization" that perturbs the event schedule is a behavior
  change, not a speedup).
* ``--only commutativity`` — semantic-lock payoff on the hot-object
  bank/order workloads vs
  ``benchmarks/baselines/claims_commutativity.json``.  Simulated time,
  so the comparison is exact: any drift from the committed throughput
  or lock-wait numbers fails, as does losing the headline
  ``min_bank_speedup`` floor.

``--only`` may be repeated; with no ``--only`` every gate runs.
``--update`` rewrites the selected envelopes from this run instead of
checking.  ``tools/check_message_baseline.py`` remains as a
back-compat shim covering the messages + locality pair.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_commutativity  # noqa: E402
import bench_speed  # noqa: E402
from check_message_baseline import check_locality, check_messages  # noqa: E402

GATES = ("messages", "locality", "speed", "commutativity")


def check_speed(update: bool) -> list:
    """Re-measure fig2 events/s and gate it against the envelope."""
    envelope = bench_speed.load_baseline()
    if envelope is None:
        return ["speed: no committed baseline "
                "(capture one with tools/bench_speed.py --update)"]

    failures = []
    trace = bench_speed.measure_trace_digest()
    expected = envelope.get("trace_check", {}).get("sha256")
    if expected is not None and trace["sha256"] != expected:
        # Behavior drift gates even an --update: a changed schedule
        # must be re-blessed via the golden-trace tests first.
        return [
            f"speed.trace: golden-point digest {trace['sha256']} != "
            f"committed {expected} (event schedule changed; fix the "
            "behavior or re-bless tests/test_trace_golden.py first)"
        ]
    print(f"ok: speed.trace digest {trace['sha256'][:16]}… "
          f"({trace['events']} events, {trace['commits']} commits)")

    committed = envelope.get("baseline")
    scale = committed["scale"] if committed else bench_speed.POINT["scale"]
    cal = bench_speed.calibrate()
    speed = bench_speed.measure_speed(scale, repeats=3)
    speed["scale"] = scale
    speed["normalized"] = round(speed["events_per_s"] / cal, 6)
    print(f"speed: {speed['events']} events in {speed['wall_s']}s = "
          f"{speed['events_per_s']} events/s "
          f"(normalized {speed['normalized']})")

    if update:
        envelope["baseline"] = speed
        envelope["calibration_ops_per_s"] = round(cal, 1)
        pre = envelope.get("pre_pr")
        if pre and pre.get("normalized"):
            envelope["speedup_vs_pre_pr"] = round(
                speed["normalized"] / pre["normalized"], 2
            )
        bench_speed.write_baseline(envelope)
        print(f"baseline updated: {bench_speed.BASELINE_PATH}")
        return []

    if committed is None:
        return ["speed: envelope has no 'baseline' measurement "
                "(run tools/bench_speed.py --update)"]
    max_regression = envelope.get("max_regression", 0.15)
    floor = committed["normalized"] * (1.0 - max_regression)
    if speed["normalized"] < floor:
        failures.append(
            f"speed.normalized: {speed['normalized']} < {floor:.6f} "
            f"(committed {committed['normalized']} minus "
            f"{max_regression:.0%} tolerance)"
        )
    else:
        print(f"ok: speed.normalized = {speed['normalized']} "
              f"(committed {committed['normalized']}, "
              f"floor {floor:.6f})")
    pre = envelope.get("pre_pr")
    min_speedup = envelope.get("min_speedup_vs_pre_pr")
    if pre and pre.get("normalized") and min_speedup:
        speedup = speed["normalized"] / pre["normalized"]
        if speedup < min_speedup:
            failures.append(
                f"speed.speedup_vs_pre_pr: {speedup:.2f}x < required "
                f"{min_speedup}x (the committed trajectory regressed)"
            )
        else:
            print(f"ok: speed.speedup_vs_pre_pr = {speedup:.2f}x "
                  f"(floor {min_speedup}x)")
    return failures


def check_commutativity(update: bool) -> list:
    """Re-measure the semantic-lock payoff and gate it exactly."""
    results = bench_commutativity.measure_all()
    for name, entry in sorted(results.items()):
        print(f"commutativity.{name}: "
              f"off {entry['off']['throughput_commits_per_s']} -> "
              f"on {entry['on']['throughput_commits_per_s']} commits/s "
              f"({entry['speedup']}x, waits "
              f"{entry['off']['lock_waits']} -> "
              f"{entry['on']['lock_waits']})")

    if update:
        bench_commutativity.write_baseline({
            "schema": bench_commutativity.SCHEMA,
            "protocol": "lotec",
            "min_bank_speedup": bench_commutativity.MIN_BANK_SPEEDUP,
            "workloads": results,
        })
        print(f"baseline updated: {bench_commutativity.BASELINE_PATH}")
        return []

    envelope = bench_commutativity.load_baseline()
    if envelope is None:
        return ["commutativity: no committed baseline (capture one with "
                "tools/bench_commutativity.py --update)"]
    failures = []
    floor = envelope.get("min_bank_speedup",
                         bench_commutativity.MIN_BANK_SPEEDUP)
    speedup = results["bank"]["speedup"]
    if speedup < floor:
        failures.append(
            f"commutativity.bank: speedup {speedup}x < required {floor}x"
        )
    else:
        print(f"ok: commutativity.bank speedup {speedup}x (floor {floor}x)")
    # Simulated clocks are exact, so the committed numbers must
    # reproduce bit-for-bit — any drift is a behavior change.
    committed = envelope.get("workloads", {})
    if committed != results:
        for name in sorted(set(committed) | set(results)):
            if committed.get(name) != results.get(name):
                failures.append(
                    f"commutativity.{name}: measured {results.get(name)} "
                    f"!= committed {committed.get(name)} (if intentional, "
                    "regenerate with tools/check_baselines.py --update "
                    "--only commutativity)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the selected envelopes from this run")
    parser.add_argument("--only", action="append", choices=GATES,
                        help="run only the named gate(s); repeatable")
    args = parser.parse_args(argv)
    gates = tuple(args.only) if args.only else GATES

    failures = []
    if "messages" in gates:
        failures += check_messages(args.update)
    if "locality" in gates:
        failures += check_locality(args.update)
    if "speed" in gates:
        failures += check_speed(args.update)
    if "commutativity" in gates:
        failures += check_commutativity(args.update)

    if failures:
        print("baseline regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("If the change is intentional, regenerate with "
              "tools/check_baselines.py --update "
              f"--only {' --only '.join(gates)}", file=sys.stderr)
        return 1
    if not args.update:
        print(f"baselines within envelopes: {', '.join(gates)}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
