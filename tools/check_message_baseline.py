#!/usr/bin/env python
"""Guard the wire-message budget of the claims-messages benchmark.

Re-runs the ``claims-messages`` experiment at a pinned (seed, scale,
scenario) point and compares the per-protocol ``PAGE_REQUEST`` counts
— plus total message counts — against the committed baseline envelope
in ``benchmarks/baselines/claims_messages.json``.  Any increase fails
the build: transfer-pipeline changes (batching above all) may only
hold or shrink the message budget, never silently grow it.

Usage:
    PYTHONPATH=src python tools/check_message_baseline.py
    PYTHONPATH=src python tools/check_message_baseline.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "baselines", "claims_messages.json",
)


def measure(scenario: str, seed: int, num_nodes: int, scale: float):
    from repro.bench.experiments import plan_claims_messages
    from repro.bench.parallel import ExperimentRunner

    plan = plan_claims_messages(scenario, seed=seed, num_nodes=num_nodes,
                                scale=scale)
    measurements = ExperimentRunner().execute(plan.specs)
    counts = {}
    for spec, measurement in zip(plan.specs, measurements):
        by_category = measurement["network"]["by_category"]
        counts[spec.key] = {
            "page_request_messages": by_category.get(
                "page_request", {}).get("messages", 0),
            "total_messages": measurement["network"]["total_messages"],
        }
    return counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SCALE",
                                                     "0.1")))
    args = parser.parse_args(argv)

    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    point = baseline["point"]
    if args.scale != point["scale"]:
        print(f"note: measuring at --scale {args.scale} but the baseline "
              f"was recorded at scale {point['scale']}; comparing anyway "
              "is meaningless, so the pinned scale is used.")
    counts = measure(point["scenario"], point["seed"], point["num_nodes"],
                     point["scale"])

    if args.update:
        baseline["counts"] = counts
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    failures = []
    for protocol, expected in sorted(baseline["counts"].items()):
        got = counts.get(protocol)
        if got is None:
            failures.append(f"{protocol}: missing from measurement")
            continue
        for metric in ("page_request_messages", "total_messages"):
            if got[metric] > expected[metric]:
                failures.append(
                    f"{protocol}.{metric}: {got[metric]} > baseline "
                    f"{expected[metric]}"
                )
            else:
                print(f"ok: {protocol}.{metric} = {got[metric]} "
                      f"(baseline {expected[metric]})")
    if failures:
        print("message budget regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("If the increase is intentional, regenerate with "
              "tools/check_message_baseline.py --update", file=sys.stderr)
        return 1
    print("message budget within baseline envelope.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
