#!/usr/bin/env python
"""Guard the wire-message budgets of the claims benchmarks.

Two gates, each against a committed baseline envelope re-measured at
its own pinned (seed, scale, scenario) point:

* ``claims-messages`` (``benchmarks/baselines/claims_messages.json``)
  — per-protocol ``PAGE_REQUEST`` and total message counts.  Any
  increase fails the build: transfer-pipeline changes (batching above
  all) may only hold or shrink the message budget, never silently
  grow it.
* ``claims-locality`` (``benchmarks/baselines/claims_locality.json``)
  — remote directory messages under static round-robin homes vs
  adaptive GDO migration on the skewed open-loop load scenario.
  Fails if either count grows past its baseline, or if migration's
  reduction drops below the baseline's ``min_reduction`` floor
  (the headline "migration cuts remote directory traffic by >= 30%"
  claim).

Usage:
    PYTHONPATH=src python tools/check_message_baseline.py
    PYTHONPATH=src python tools/check_message_baseline.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "baselines",
)
BASELINE_PATH = os.path.join(_BASELINE_DIR, "claims_messages.json")
LOCALITY_BASELINE_PATH = os.path.join(_BASELINE_DIR,
                                      "claims_locality.json")


def measure(scenario: str, seed: int, num_nodes: int, scale: float):
    from repro.bench.experiments import plan_claims_messages
    from repro.bench.parallel import ExperimentRunner

    plan = plan_claims_messages(scenario, seed=seed, num_nodes=num_nodes,
                                scale=scale)
    measurements = ExperimentRunner().execute(plan.specs)
    counts = {}
    for spec, measurement in zip(plan.specs, measurements):
        by_category = measurement["network"]["by_category"]
        counts[spec.key] = {
            "page_request_messages": by_category.get(
                "page_request", {}).get("messages", 0),
            "total_messages": measurement["network"]["total_messages"],
        }
    return counts


def measure_locality(scenario: str, seed: int, scale: float):
    from repro.bench.experiments import plan_claims_locality
    from repro.bench.parallel import ExperimentRunner

    plan = plan_claims_locality(scenario, seed=seed, scale=scale)
    measurements = ExperimentRunner().execute(plan.specs)
    counts = {}
    for spec, measurement in zip(plan.specs, measurements):
        counts[spec.key] = {
            "remote_directory_messages":
                measurement["network"]["remote_directory_messages"],
            "total_messages": measurement["network"]["total_messages"],
        }
    static = counts["static"]["remote_directory_messages"]
    adaptive = counts["adaptive"]["remote_directory_messages"]
    reduction = 0.0 if static <= 0 else (static - adaptive) / static
    return counts, round(reduction, 4)


def check_messages(update: bool) -> list:
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    point = baseline["point"]
    counts = measure(point["scenario"], point["seed"], point["num_nodes"],
                     point["scale"])

    if update:
        baseline["counts"] = counts
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {BASELINE_PATH}")
        return []

    failures = []
    for protocol, expected in sorted(baseline["counts"].items()):
        got = counts.get(protocol)
        if got is None:
            failures.append(f"{protocol}: missing from measurement")
            continue
        for metric in ("page_request_messages", "total_messages"):
            if got[metric] > expected[metric]:
                failures.append(
                    f"{protocol}.{metric}: {got[metric]} > baseline "
                    f"{expected[metric]}"
                )
            else:
                print(f"ok: {protocol}.{metric} = {got[metric]} "
                      f"(baseline {expected[metric]})")
    return failures


def check_locality(update: bool) -> list:
    with open(LOCALITY_BASELINE_PATH, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    point = baseline["point"]
    counts, reduction = measure_locality(point["scenario"], point["seed"],
                                         point["scale"])

    if update:
        baseline["counts"] = counts
        baseline["reduction"] = reduction
        with open(LOCALITY_BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {LOCALITY_BASELINE_PATH}")
        return []

    failures = []
    min_reduction = baseline["min_reduction"]
    if reduction < min_reduction:
        failures.append(
            f"locality.reduction: {reduction} < required {min_reduction} "
            "(migration no longer cuts remote directory traffic enough)"
        )
    else:
        print(f"ok: locality.reduction = {reduction} "
              f"(floor {min_reduction}, baseline {baseline['reduction']})")
    for policy, expected in sorted(baseline["counts"].items()):
        got = counts.get(policy)
        if got is None:
            failures.append(f"locality.{policy}: missing from measurement")
            continue
        for metric in ("remote_directory_messages", "total_messages"):
            if got[metric] > expected[metric]:
                failures.append(
                    f"locality.{policy}.{metric}: {got[metric]} > baseline "
                    f"{expected[metric]}"
                )
            else:
                print(f"ok: locality.{policy}.{metric} = {got[metric]} "
                      f"(baseline {expected[metric]})")
    return failures


def main(argv=None) -> int:
    """Back-compat shim: the unified gate lives in
    ``tools/check_baselines.py``; this entry point forwards to it,
    scoped to the messages + locality pair it historically covered."""
    import check_baselines  # deferred: check_baselines imports this module

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines from this run")
    parser.add_argument("--scale", type=float,
                        default=float(os.environ.get("REPRO_BENCH_SCALE",
                                                     "0.1")))
    parser.add_argument("--only", choices=["messages", "locality"],
                        help="run a single gate instead of both")
    args = parser.parse_args(argv)

    if args.scale != 0.1:
        print(f"note: --scale {args.scale} is ignored; each baseline is "
              "measured at its own pinned scale (comparing across scales "
              "is meaningless).")

    forwarded = ["--update"] if args.update else []
    for gate in ([args.only] if args.only else ["messages", "locality"]):
        forwarded += ["--only", gate]
    return check_baselines.main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
