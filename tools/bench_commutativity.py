#!/usr/bin/env python
"""Commutativity payoff benchmark: hot-object bank/order workloads.

Measures what the semantic lock modes (ROADMAP item 3) actually buy on
the two example applications' hot objects:

* **bank** — one hot ``Account`` absorbing a stream of concurrent
  ``deposit`` calls from every node.  ``deposit`` is a pure blind
  increment, so with ``semantic_locks=True`` every pair commutes and
  the deposits pipeline instead of serializing behind one write lock.
* **order** — one hot ``Warehouse`` taking concurrent ``new_order``
  invocations that nest ``Item.allocate`` / ``Customer.charge`` subs.
  The warehouse's own footprint is two blind increments, so orders
  only serialize on genuinely shared items and customers.

Both runs assert the exact final state (money/stock conservation — the
increment ledger must merge, not race) and that the relaxed schedule
stays serializable.  The committed envelope
(``benchmarks/baselines/claims_commutativity.json``) pins per-workload
committed throughput (commits per simulated second) with modes off and
on; ``tools/check_baselines.py --only commutativity`` re-measures and
fails if the headline speedup floor no longer holds.

The measurement is *simulated* time, so it is exactly reproducible —
no calibration or tolerance dance needed.

Usage:
    PYTHONPATH=src python tools/bench_commutativity.py            # measure + print
    PYTHONPATH=src python tools/bench_commutativity.py --update   # rewrite envelope
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(
    REPO_ROOT, "benchmarks", "baselines", "claims_commutativity.json"
)

sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "examples"))

SCHEMA = 1

#: Headline claim the gate enforces: semantic modes must keep at least
#: this commit-throughput multiple on the bank hot-object workload.
MIN_BANK_SPEEDUP = 1.5


def _cluster(semantic: bool, seed: int):
    from repro import Cluster, ClusterConfig

    return Cluster(ClusterConfig(
        num_nodes=4, protocol="lotec", seed=seed,
        semantic_locks=semantic,
    ))


def run_bank(semantic: bool, deposits: int = 96, seed: int = 7) -> dict:
    """A stream of concurrent deposits against one hot account."""
    from bank_branches import Account

    cluster = _cluster(semantic, seed)
    account = cluster.create(Account)
    total = 0
    for index in range(deposits):
        amount = 10 + index % 17
        total += amount
        cluster.submit(account, "deposit", amount,
                       node=cluster.nodes[index % len(cluster.nodes)],
                       delay=index * 0.0001)
    cluster.run()
    balance = cluster.read_attr(account, "balance")
    if balance != total:
        raise AssertionError(
            f"bank conservation broken: balance {balance} != {total}"
        )
    if cluster.read_attr(account, "deposits") != deposits:
        raise AssertionError("bank deposit count drifted")
    return _measure(cluster, expected_commits=deposits)


def run_order(semantic: bool, orders: int = 60, seed: int = 9) -> dict:
    """The order example's hot-warehouse stream, modes on or off."""
    from order_processing import Customer, Item, Warehouse

    cluster = _cluster(semantic, seed)
    warehouse = cluster.create(Warehouse)
    items = [cluster.create(Item) for _ in range(12)]
    customers = [cluster.create(Customer) for _ in range(8)]
    stock_before = sum(cluster.read_attr(item, "stock") for item in items)
    for index in range(orders):
        customer = customers[index % len(customers)]
        lines = tuple(
            (items[(index * 3 + k) % len(items)], 1 + (index + k) % 3,
             10 + k)
            for k in range(1 + index % 3)
        )
        cluster.submit(warehouse, "new_order", customer, lines,
                       node=cluster.nodes[index % len(cluster.nodes)],
                       delay=index * 0.0002)
    cluster.run()
    moved = sum(cluster.read_attr(item, "reserved") for item in items)
    left = sum(cluster.read_attr(item, "stock") for item in items)
    if moved + left != stock_before:
        raise AssertionError(
            f"order conservation broken: {moved} reserved + {left} left "
            f"!= {stock_before} initial"
        )
    return _measure(cluster)


def _measure(cluster, expected_commits: int = None) -> dict:
    from repro.runtime.verify import check_serializability

    commits = len(cluster.commit_log)
    if expected_commits is not None and commits != expected_commits:
        raise AssertionError(
            f"expected {expected_commits} commits, got {commits}"
        )
    if not check_serializability(cluster):
        raise AssertionError("relaxed schedule is not serializable")
    makespan = round(cluster.env.now, 6)
    return {
        "commits": commits,
        "makespan_s": makespan,
        "throughput_commits_per_s": round(commits / makespan, 2),
        "lock_waits": cluster.lock_stats.waits,
    }


def measure_all() -> dict:
    results = {}
    for name, runner in (("bank", run_bank), ("order", run_order)):
        off = runner(semantic=False)
        on = runner(semantic=True)
        results[name] = {
            "off": off,
            "on": on,
            "speedup": round(
                on["throughput_commits_per_s"]
                / off["throughput_commits_per_s"], 2
            ),
            "wait_reduction": round(
                1.0 - on["lock_waits"] / off["lock_waits"], 3
            ) if off["lock_waits"] else 0.0,
        }
    return results


def load_baseline() -> dict:
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def write_baseline(envelope: dict) -> None:
    with open(BASELINE_PATH, "w") as handle:
        json.dump(envelope, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed envelope")
    args = parser.parse_args(argv)

    results = measure_all()
    for name, entry in results.items():
        off, on = entry["off"], entry["on"]
        print(f"{name}: off {off['throughput_commits_per_s']} commits/s "
              f"({off['lock_waits']} waits) -> "
              f"on {on['throughput_commits_per_s']} commits/s "
              f"({on['lock_waits']} waits) = {entry['speedup']}x, "
              f"waits -{entry['wait_reduction']:.0%}")

    if args.update:
        write_baseline({
            "schema": SCHEMA,
            "protocol": "lotec",
            "min_bank_speedup": MIN_BANK_SPEEDUP,
            "workloads": results,
        })
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    speedup = results["bank"]["speedup"]
    if speedup < MIN_BANK_SPEEDUP:
        print(f"FAIL: bank speedup {speedup}x < {MIN_BANK_SPEEDUP}x",
              file=sys.stderr)
        return 1
    print(f"bank hot-object speedup {speedup}x "
          f"(floor {MIN_BANK_SPEEDUP}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
