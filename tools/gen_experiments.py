#!/usr/bin/env python
"""Regenerate the measured numbers quoted in EXPERIMENTS.md.

Runs every experiment driver at full scale (the benches' default is
half scale for speed) and writes the rendered tables to
``tools/experiments_data.txt`` for inclusion in EXPERIMENTS.md.
"""

import io
import sys

from repro.bench import (
    run_aggregation_ablation,
    run_bytes_figure,
    run_claims_messages,
    run_claims_reduction,
    run_gdo_cache_ablation,
    run_multicast_ablation,
    run_object_grain_ablation,
    run_per_class_ablation,
    run_prediction_ablation,
    run_prefetch_ablation,
    run_rc_ablation,
    run_recovery_ablation,
    run_time_figure,
)

SEED = 11
SCALE = 1.0


def main() -> None:
    out = io.StringIO()

    def emit(title, result, extra=None):
        print(f"== {title} ==", file=out)
        print(result.render(), file=out)
        if extra:
            print(extra, file=out)
        print(file=out)
        sys.stderr.write(f"done: {title}\n")

    for figure, scenario in [
        ("fig2", "medium-high"), ("fig3", "large-high"),
        ("fig4", "medium-moderate"), ("fig5", "large-moderate"),
    ]:
        result = run_bytes_figure(scenario, seed=SEED, scale=SCALE)
        totals = result.meta["total_data_bytes"]
        otec_saving = 1 - totals["otec"] / totals["cotec"]
        lotec_saving = 1 - totals["lotec"] / totals["otec"]
        emit(
            f"{figure} ({scenario})", result,
            extra=(
                f"aggregate data bytes: {totals}\n"
                f"OTEC vs COTEC: -{otec_saving:.1%}; "
                f"LOTEC vs OTEC: -{lotec_saving:.1%}\n"
                f"messages: {result.meta['total_messages']}"
            ),
        )
    for figure, bandwidth in [("fig6", "10Mbps"), ("fig7", "100Mbps"),
                              ("fig8", "1Gbps")]:
        emit(f"{figure} ({bandwidth})",
             run_time_figure(bandwidth, seed=SEED, scale=SCALE))
    reduction = run_claims_reduction(seed=SEED, scale=SCALE)
    lines = [
        f"{scenario}: OTEC -{r['otec_vs_cotec']:.1%} vs COTEC; "
        f"LOTEC -{r['lotec_vs_otec']:.1%} vs OTEC"
        for scenario, r in reduction.meta["reductions"].items()
    ]
    emit("tab-speedup (reductions)", reduction, extra="\n".join(lines))
    emit("msg-count", run_claims_messages(seed=SEED, scale=SCALE))
    emit("abl-rc", run_rc_ablation(seed=SEED, scale=SCALE))
    emit("abl-dsd", run_object_grain_ablation(seed=SEED, scale=SCALE))
    emit("abl-predict", run_prediction_ablation(seed=SEED, scale=SCALE))
    emit("abl-gdocache", run_gdo_cache_ablation(seed=SEED, scale=SCALE))
    emit("abl-recovery", run_recovery_ablation(seed=SEED, scale=SCALE))
    emit("abl-multicast", run_multicast_ablation(seed=SEED, scale=SCALE))
    emit("abl-prefetch", run_prefetch_ablation(seed=SEED, scale=SCALE))
    emit("abl-perclass", run_per_class_ablation(seed=SEED, scale=SCALE))
    emit("abl-aggregate", run_aggregation_ablation(seed=SEED, scale=SCALE))

    with open("tools/experiments_data.txt", "w") as handle:
        handle.write(out.getvalue())
    print("wrote tools/experiments_data.txt")


if __name__ == "__main__":
    main()
