"""Thin setup.py shim: enables legacy editable installs (`pip install -e .
--no-use-pep517`) on environments without the `wheel` package.  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
